//! Netlist simulation: 64-way bit-parallel and three-valued reference.
//!
//! Two engines over the same compiled program:
//!
//! * [`BitSim`] — two-valued, 64 parallel test vectors per pass (`x`
//!   collapses to 0); used for random-vector equivalence pre-filtering and
//!   for the "few unknown inputs ⇒ simulate exhaustively" half of the
//!   paper's hybrid decision procedure.
//! * [`TriSim`] — scalar three-valued simulation that defers to
//!   [`smartly_netlist::eval_cell`], the IR's reference semantics; used as
//!   the oracle in tests.
//!
//! Both are compiled once per module ([`compile`]) and reused across
//! vectors; sequential designs advance with `tick()`.
//!
//! A third, cone-scoped entry point serves the redundancy pass's query
//! engine: [`compile_cone`] turns a topologically ordered *subset* of a
//! module's cells into a [`ConeProgram`], and [`ConeSim`] replays 64
//! test vectors through it per pass — the substrate for counterexample
//! replay and random-simulation prefiltering of SAT queries.
//!
//! # Example
//!
//! ```
//! use smartly_netlist::Module;
//! use smartly_sim::{compile, BitSim};
//!
//! let mut m = Module::new("adder");
//! let a = m.add_input("a", 8);
//! let b = m.add_input("b", 8);
//! let y = m.add(&a, &b);
//! m.add_output("y", &y);
//!
//! let prog = compile(&m)?;
//! let mut sim = BitSim::new(&prog);
//! sim.set_input("a", &[1, 2, 250]);
//! sim.set_input("b", &[1, 3, 10]);
//! sim.eval_comb();
//! assert_eq!(sim.output("y"), vec![2, 5, 4]); // wraps at 8 bits
//! # Ok::<(), smartly_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smartly_netlist::{
    eval_cell, CellId, CellInputs, CellKind, Module, NetIndex, NetlistError, Port, SigBit, SigSpec,
    TriVal,
};
use std::collections::{HashMap, HashSet};

/// A value source: a constant or a storage slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ValueRef {
    Const(TriVal),
    Slot(u32),
}

#[derive(Clone, Debug)]
struct CellOp {
    kind: CellKind,
    a: Vec<ValueRef>,
    b: Vec<ValueRef>,
    s: Vec<ValueRef>,
    /// output slots
    y: Vec<u32>,
}

#[derive(Clone, Debug)]
struct DffOp {
    d: Vec<ValueRef>,
    q: Vec<u32>,
}

/// A module compiled for simulation: slots, topologically ordered cell
/// operations, port bindings and flip-flop latch lists.
#[derive(Clone, Debug)]
pub struct Program {
    slots: usize,
    ops: Vec<CellOp>,
    dffs: Vec<DffOp>,
    inputs: Vec<(String, Vec<u32>)>,
    outputs: Vec<(String, Vec<ValueRef>)>,
}

impl Program {
    /// Number of storage slots (canonical wire bits).
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Input port names and widths.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, usize)> {
        self.inputs.iter().map(|(n, s)| (n.as_str(), s.len()))
    }

    /// Output port names and widths.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, usize)> {
        self.outputs.iter().map(|(n, s)| (n.as_str(), s.len()))
    }

    /// Whether the module contains flip-flops.
    pub fn is_sequential(&self) -> bool {
        !self.dffs.is_empty()
    }
}

/// Compiles `module` into a simulation [`Program`].
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic combinational
/// logic (via [`Module::topo_order`]).
pub fn compile(module: &Module) -> Result<Program, NetlistError> {
    let index = NetIndex::build(module);
    let order = module.topo_order()?;

    struct SlotAlloc {
        slot_of: HashMap<SigBit, u32>,
        count: u32,
    }
    impl SlotAlloc {
        fn slot_for(&mut self, bit: SigBit) -> u32 {
            let count = &mut self.count;
            *self.slot_of.entry(bit).or_insert_with(|| {
                let s = *count;
                *count += 1;
                s
            })
        }
        fn resolve(&mut self, spec: &SigSpec, index: &NetIndex) -> Vec<ValueRef> {
            spec.iter()
                .map(|b| match index.canon(*b) {
                    SigBit::Const(v) => ValueRef::Const(v),
                    wire_bit => ValueRef::Slot(self.slot_for(wire_bit)),
                })
                .collect()
        }
    }
    let mut alloc = SlotAlloc {
        slot_of: HashMap::new(),
        count: 0,
    };

    let mut ops = Vec::new();
    let mut dffs = Vec::new();
    for id in order {
        let cell = module.cell(id).expect("topo order lists live cells");
        let get = |p: Port| cell.port(p).cloned().unwrap_or_default();
        let out_spec = cell.output().clone();
        let y: Vec<u32> = out_spec
            .iter()
            .map(|b| match index.canon(*b) {
                SigBit::Const(_) => unreachable!("outputs drive wires"),
                wire_bit => alloc.slot_for(wire_bit),
            })
            .collect();
        if cell.kind == CellKind::Dff {
            let d = alloc.resolve(&get(Port::D), &index);
            dffs.push(DffOp { d, q: y });
        } else {
            ops.push(CellOp {
                kind: cell.kind,
                a: alloc.resolve(&get(Port::A), &index),
                b: alloc.resolve(&get(Port::B), &index),
                s: alloc.resolve(&get(Port::S), &index),
                y,
            });
        }
    }

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for p in module.ports() {
        let w = module.wire(p.wire).width;
        match p.dir {
            smartly_netlist::PortDir::Input => {
                let slots_vec: Vec<u32> = (0..w)
                    .map(|i| alloc.slot_for(SigBit::Wire(p.wire, i)))
                    .collect();
                inputs.push((p.name.clone(), slots_vec));
            }
            smartly_netlist::PortDir::Output => {
                let refs: Vec<ValueRef> = (0..w)
                    .map(|i| match index.canon(SigBit::Wire(p.wire, i)) {
                        SigBit::Const(v) => ValueRef::Const(v),
                        wire_bit => ValueRef::Slot(alloc.slot_for(wire_bit)),
                    })
                    .collect();
                outputs.push((p.name.clone(), refs));
            }
        }
    }

    Ok(Program {
        slots: alloc.count as usize,
        ops,
        dffs,
        inputs,
        outputs,
    })
}

// ===================================================================== BitSim

/// 64-way bit-parallel two-valued simulator.
///
/// Each storage slot holds a 64-bit word: lane `k` of every slot together
/// forms test vector `k`. Constants `x` evaluate as 0.
#[derive(Clone, Debug)]
pub struct BitSim<'p> {
    prog: &'p Program,
    state: Vec<u64>,
    lanes: usize,
}

impl<'p> BitSim<'p> {
    /// Creates a simulator with all slots (including flip-flop state) zero.
    pub fn new(prog: &'p Program) -> Self {
        BitSim {
            prog,
            state: vec![0; prog.slots],
            lanes: 1,
        }
    }

    /// Number of active lanes (test vectors), at most 64.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets the active lane count explicitly (useful with
    /// [`BitSim::set_input_plane`]).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 64.
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        self.lanes = lanes;
    }

    fn read(&self, r: ValueRef) -> u64 {
        match r {
            ValueRef::Const(TriVal::One) => u64::MAX,
            ValueRef::Const(_) => 0,
            ValueRef::Slot(s) => self.state[s as usize],
        }
    }

    /// Sets input `name` from per-lane values (`values[k]` = value of the
    /// port in lane `k`). Missing lanes default to 0; sets the active lane
    /// count to `values.len()` if larger than the current count.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or more than 64 values are given.
    pub fn set_input(&mut self, name: &str, values: &[u64]) {
        assert!(values.len() <= 64, "at most 64 lanes");
        let slots = &self
            .prog
            .inputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input port '{name}'"))
            .1;
        for (bit, &slot) in slots.iter().enumerate() {
            let mut plane = 0u64;
            for (lane, &v) in values.iter().enumerate() {
                if (v >> bit) & 1 == 1 {
                    plane |= 1 << lane;
                }
            }
            self.state[slot as usize] = plane;
        }
        self.lanes = self.lanes.max(values.len());
    }

    /// Sets one input bit-plane directly (lane mask for a single bit).
    ///
    /// # Panics
    ///
    /// Panics on unknown port or out-of-range bit.
    pub fn set_input_plane(&mut self, name: &str, bit: usize, plane: u64) {
        let slots = &self
            .prog
            .inputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input port '{name}'"))
            .1;
        self.state[slots[bit] as usize] = plane;
    }

    /// Evaluates all combinational logic for the current inputs and state.
    pub fn eval_comb(&mut self) {
        for i in 0..self.prog.ops.len() {
            let op = &self.prog.ops[i];
            let out = self.eval_op(op);
            let op_y: Vec<u32> = op.y.clone();
            for (slot, v) in op_y.iter().zip(out) {
                self.state[*slot as usize] = v;
            }
        }
    }

    /// Clock edge: evaluates combinational logic, then latches all
    /// flip-flops.
    pub fn tick(&mut self) {
        self.eval_comb();
        let next: Vec<(Vec<u32>, Vec<u64>)> = self
            .prog
            .dffs
            .iter()
            .map(|d| (d.q.clone(), d.d.iter().map(|&r| self.read(r)).collect()))
            .collect();
        for (q, vals) in next {
            for (slot, v) in q.iter().zip(vals) {
                self.state[*slot as usize] = v;
            }
        }
        self.eval_comb();
    }

    /// Reads output `name` as per-lane values (lane `k` = vector `k`).
    ///
    /// # Panics
    ///
    /// Panics if the port is unknown or wider than 64 bits.
    pub fn output(&self, name: &str) -> Vec<u64> {
        let refs = &self
            .prog
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output port '{name}'"))
            .1;
        assert!(refs.len() <= 64, "output wider than 64 bits");
        let mut out = vec![0u64; self.lanes];
        for (bit, &r) in refs.iter().enumerate() {
            let plane = self.read(r);
            for (lane, slot) in out.iter_mut().enumerate() {
                if (plane >> lane) & 1 == 1 {
                    *slot |= 1 << bit;
                }
            }
        }
        out
    }

    /// Reads one output bit-plane.
    ///
    /// # Panics
    ///
    /// Panics on unknown port or out-of-range bit.
    pub fn output_plane(&self, name: &str, bit: usize) -> u64 {
        let refs = &self
            .prog
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output port '{name}'"))
            .1;
        self.read(refs[bit])
    }

    fn eval_op(&self, op: &CellOp) -> Vec<u64> {
        eval_lanes(op, |r| self.read(r))
    }
}

/// Lane-parallel evaluation of one cell over a value source — shared by
/// [`BitSim`] (full-module state) and [`ConeSim`] (cone-scoped state).
fn eval_lanes(op: &CellOp, read: impl Fn(ValueRef) -> u64) -> Vec<u64> {
    use CellKind::*;
    let a: Vec<u64> = op.a.iter().map(|&r| read(r)).collect();
    let b: Vec<u64> = op.b.iter().map(|&r| read(r)).collect();
    let s: Vec<u64> = op.s.iter().map(|&r| read(r)).collect();
    let w = op.y.len();
    match op.kind {
        Not => a.iter().map(|&x| !x).collect(),
        And => a.iter().zip(&b).map(|(&x, &y)| x & y).collect(),
        Or => a.iter().zip(&b).map(|(&x, &y)| x | y).collect(),
        Xor => a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect(),
        Xnor => a.iter().zip(&b).map(|(&x, &y)| !(x ^ y)).collect(),
        ReduceAnd => vec![a.iter().fold(u64::MAX, |acc, &x| acc & x)],
        ReduceOr | ReduceBool => vec![a.iter().fold(0, |acc, &x| acc | x)],
        ReduceXor => vec![a.iter().fold(0, |acc, &x| acc ^ x)],
        LogicNot => vec![!a.iter().fold(0, |acc, &x| acc | x)],
        LogicAnd => {
            let ra = a.iter().fold(0, |acc, &x| acc | x);
            let rb = b.iter().fold(0, |acc, &x| acc | x);
            vec![ra & rb]
        }
        LogicOr => {
            let ra = a.iter().fold(0, |acc, &x| acc | x);
            let rb = b.iter().fold(0, |acc, &x| acc | x);
            vec![ra | rb]
        }
        Add => add_lanes(&a, &b, 0),
        Sub => {
            let nb: Vec<u64> = b.iter().map(|&x| !x).collect();
            add_lanes(&a, &nb, u64::MAX)
        }
        Mul => {
            // shift-and-add over partial products
            let mut acc = vec![0u64; w];
            for (j, &bj) in b.iter().enumerate().take(w) {
                if j >= w {
                    break;
                }
                let partial: Vec<u64> = (0..w)
                    .map(|i| if i >= j { a[i - j] & bj } else { 0 })
                    .collect();
                acc = add_lanes(&acc, &partial, 0);
            }
            acc
        }
        Shl | Shr => {
            // barrel shifter over the shift-amount bits (port B)
            let mut cur = a.clone();
            for (k, &sk) in b.iter().enumerate() {
                let amount = 1usize << k.min(31);
                let mut next = vec![0u64; w];
                for i in 0..w {
                    let shifted = if op.kind == Shl {
                        if i >= amount {
                            cur[i - amount]
                        } else {
                            0
                        }
                    } else if i + amount < w {
                        cur[i + amount]
                    } else {
                        0
                    };
                    next[i] = (sk & shifted) | (!sk & cur[i]);
                }
                cur = next;
            }
            cur
        }
        Eq | Ne => {
            let mut eq = u64::MAX;
            for (x, y) in a.iter().zip(&b) {
                eq &= !(x ^ y);
            }
            vec![if op.kind == Eq { eq } else { !eq }]
        }
        Lt | Le | Gt | Ge => {
            // LSB→MSB recurrence: lt_i = (!a&b) | ((a xnor b) & lt)
            let mut lt = 0u64;
            let mut gt = 0u64;
            for (x, y) in a.iter().zip(&b) {
                lt = (!x & y) | (!(x ^ y) & lt);
                gt = (x & !y) | (!(x ^ y) & gt);
            }
            vec![match op.kind {
                Lt => lt,
                Le => !gt,
                Gt => gt,
                Ge => !lt,
                _ => unreachable!(),
            }]
        }
        Mux => {
            let sel = s[0];
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| (y & sel) | (x & !sel))
                .collect()
        }
        Pmux => {
            let mut taken = 0u64;
            let mut out = vec![0u64; w];
            for (i, &si) in s.iter().enumerate() {
                let take = si & !taken;
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot |= b[i * w + k] & take;
                }
                taken |= si;
            }
            for (k, slot) in out.iter_mut().enumerate() {
                *slot |= a[k] & !taken;
            }
            out
        }
        Dff => unreachable!("dffs are latched in tick()"),
    }
}

/// Lane-parallel ripple-carry addition.
fn add_lanes(a: &[u64], b: &[u64], carry_in: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for (x, y) in a.iter().zip(b) {
        let sum = x ^ y ^ carry;
        carry = (x & y) | (x & carry) | (y & carry);
        out.push(sum);
    }
    out
}

// ================================================================ ConeSim

/// A *cone* — a topologically ordered subset of a module's combinational
/// cells — compiled for 64-lane two-valued replay.
///
/// Unlike [`compile`], which binds a whole module's ports, a cone program
/// exposes its cut: every canonical bit consumed by the cone but not
/// driven inside it becomes a settable *leaf* slot, and every bit the
/// cone computes can be read back by slot. The redundancy pass's query
/// engine uses this to replay cached counterexamples and random vectors
/// through decision sub-graphs without touching a solver.
#[derive(Clone, Debug)]
pub struct ConeProgram {
    ops: Vec<CellOp>,
    slots: usize,
    slot_of: HashMap<SigBit, u32>,
    leaves: Vec<(SigBit, u32)>,
    has_x: bool,
}

/// Compiles `cells` (drivers before readers, e.g. a
/// `SubGraph::cells` order) into a [`ConeProgram`].
///
/// Bits are canonicalized through `index`; constant bits fold into the
/// program, and a constant `x` anywhere in the cone sets
/// [`ConeProgram::has_x`] (two-valued replay collapses `x` to 0, so
/// callers needing exact three-valued semantics must fall back to a
/// [`TriSim`]-style evaluation).
///
/// # Panics
///
/// Panics if `cells` names a cell the module no longer holds or a
/// sequential cell (`dff`), which has no combinational replay semantics.
pub fn compile_cone(module: &Module, index: &NetIndex, cells: &[CellId]) -> ConeProgram {
    let driven: HashSet<SigBit> = cells
        .iter()
        .flat_map(|&id| {
            module
                .cell(id)
                .expect("cone lists live cells")
                .output()
                .iter()
                .map(|b| index.canon(*b))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut slot_of: HashMap<SigBit, u32> = HashMap::new();
    let mut count = 0u32;
    let mut leaves: Vec<(SigBit, u32)> = Vec::new();
    let mut has_x = false;
    let mut ops = Vec::with_capacity(cells.len());

    for &id in cells {
        let cell = module.cell(id).expect("cone lists live cells");
        assert!(
            cell.kind != CellKind::Dff,
            "sequential cells cannot be replayed"
        );
        let mut resolve = |spec: Option<&SigSpec>| -> Vec<ValueRef> {
            spec.map(|s| {
                s.iter()
                    .map(|b| match index.canon(*b) {
                        SigBit::Const(v) => {
                            has_x |= v == TriVal::X;
                            ValueRef::Const(v)
                        }
                        bit => {
                            let next = count;
                            let slot = *slot_of.entry(bit).or_insert_with(|| {
                                count += 1;
                                next
                            });
                            if slot == next && !driven.contains(&bit) {
                                leaves.push((bit, slot));
                            }
                            ValueRef::Slot(slot)
                        }
                    })
                    .collect()
            })
            .unwrap_or_default()
        };
        let a = resolve(cell.port(Port::A));
        let b = resolve(cell.port(Port::B));
        let s = resolve(cell.port(Port::S));
        let y: Vec<u32> = cell
            .output()
            .iter()
            .map(|bit| match index.canon(*bit) {
                SigBit::Const(_) => unreachable!("outputs drive wires"),
                bit => {
                    let next = count;
                    *slot_of.entry(bit).or_insert_with(|| {
                        count += 1;
                        next
                    })
                }
            })
            .collect();
        ops.push(CellOp {
            kind: cell.kind,
            a,
            b,
            s,
            y,
        });
    }

    ConeProgram {
        ops,
        slots: count as usize,
        slot_of,
        leaves,
        has_x,
    }
}

impl ConeProgram {
    /// Storage slot of a canonical bit, if the cone references it.
    pub fn slot(&self, canonical_bit: SigBit) -> Option<u32> {
        self.slot_of.get(&canonical_bit).copied()
    }

    /// The cut bits: `(canonical bit, slot)` for every bit the cone
    /// consumes but does not drive, in first-reference order.
    pub fn leaves(&self) -> &[(SigBit, u32)] {
        &self.leaves
    }

    /// Every canonical bit the cone references, with its slot.
    pub fn bits(&self) -> impl Iterator<Item = (SigBit, u32)> + '_ {
        self.slot_of.iter().map(|(&b, &s)| (b, s))
    }

    /// Whether any constant `x` feeds the cone (two-valued replay is then
    /// an under-approximation of the three-valued semantics).
    pub fn has_x(&self) -> bool {
        self.has_x
    }

    /// Number of storage slots.
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Number of compiled cell operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

/// 64-lane replay state for a [`ConeProgram`].
///
/// Set leaf planes with [`ConeSim::set_plane`], call [`ConeSim::eval`],
/// read any computed plane back with [`ConeSim::plane`]. Lane `k` of
/// every slot together forms test vector `k`.
#[derive(Clone, Debug)]
pub struct ConeSim<'p> {
    prog: &'p ConeProgram,
    state: Vec<u64>,
}

impl<'p> ConeSim<'p> {
    /// Creates replay state with every slot zero.
    pub fn new(prog: &'p ConeProgram) -> Self {
        ConeSim {
            prog,
            state: vec![0; prog.slots],
        }
    }

    /// Sets the 64-lane plane of one slot (normally a leaf).
    pub fn set_plane(&mut self, slot: u32, plane: u64) {
        self.state[slot as usize] = plane;
    }

    /// Reads the 64-lane plane of one slot.
    pub fn plane(&self, slot: u32) -> u64 {
        self.state[slot as usize]
    }

    /// Evaluates all cone cells in program order.
    pub fn eval(&mut self) {
        // copy the reference out so `op` borrows the 'p-lived program,
        // not `self` — the hot loop then writes state with no cloning
        let prog = self.prog;
        for op in &prog.ops {
            let out = eval_lanes(op, |r| match r {
                ValueRef::Const(TriVal::One) => u64::MAX,
                ValueRef::Const(_) => 0,
                ValueRef::Slot(s) => self.state[s as usize],
            });
            for (&slot, v) in op.y.iter().zip(out) {
                self.state[slot as usize] = v;
            }
        }
    }
}

// ===================================================================== TriSim

/// Scalar three-valued simulator deferring to [`eval_cell`].
///
/// Slow but authoritative: used as the oracle for [`BitSim`] and the AIG
/// mapper in tests.
#[derive(Clone, Debug)]
pub struct TriSim<'p> {
    prog: &'p Program,
    state: Vec<TriVal>,
}

impl<'p> TriSim<'p> {
    /// Creates a simulator with all slots `X` (flip-flop state included).
    pub fn new(prog: &'p Program) -> Self {
        TriSim {
            prog,
            state: vec![TriVal::X; prog.slots],
        }
    }

    fn read(&self, r: ValueRef) -> TriVal {
        match r {
            ValueRef::Const(v) => v,
            ValueRef::Slot(s) => self.state[s as usize],
        }
    }

    /// Sets input `name` to a constant value (low `width` bits of `value`).
    ///
    /// # Panics
    ///
    /// Panics on unknown port.
    pub fn set_input_u64(&mut self, name: &str, value: u64) {
        let slots = &self
            .prog
            .inputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input port '{name}'"))
            .1;
        for (bit, &slot) in slots.iter().enumerate() {
            self.state[slot as usize] = TriVal::from_bool((value >> bit) & 1 == 1);
        }
    }

    /// Sets input `name` bit-by-bit.
    ///
    /// # Panics
    ///
    /// Panics on unknown port or width mismatch.
    pub fn set_input_tri(&mut self, name: &str, values: &[TriVal]) {
        let slots = &self
            .prog
            .inputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input port '{name}'"))
            .1;
        assert_eq!(slots.len(), values.len(), "width mismatch");
        for (&slot, &v) in slots.iter().zip(values) {
            self.state[slot as usize] = v;
        }
    }

    /// Evaluates combinational logic.
    pub fn eval_comb(&mut self) {
        for op in &self.prog.ops {
            let inputs = CellInputs {
                a: op.a.iter().map(|&r| self.read(r)).collect(),
                b: op.b.iter().map(|&r| self.read(r)).collect(),
                s: op.s.iter().map(|&r| self.read(r)).collect(),
            };
            let out = eval_cell(op.kind, &inputs, op.y.len());
            for (&slot, v) in op.y.iter().zip(out) {
                self.state[slot as usize] = v;
            }
        }
    }

    /// Clock edge: evaluate, latch, re-evaluate.
    pub fn tick(&mut self) {
        self.eval_comb();
        let next: Vec<(Vec<u32>, Vec<TriVal>)> = self
            .prog
            .dffs
            .iter()
            .map(|d| (d.q.clone(), d.d.iter().map(|&r| self.read(r)).collect()))
            .collect();
        for (q, vals) in next {
            for (slot, v) in q.iter().zip(vals) {
                self.state[*slot as usize] = v;
            }
        }
        self.eval_comb();
    }

    /// Reads output `name` as trivals.
    ///
    /// # Panics
    ///
    /// Panics on unknown port.
    pub fn output_tri(&self, name: &str) -> Vec<TriVal> {
        let refs = &self
            .prog
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output port '{name}'"))
            .1;
        refs.iter().map(|&r| self.read(r)).collect()
    }

    /// Reads output `name` as an integer if fully known.
    ///
    /// # Panics
    ///
    /// Panics on unknown port or outputs wider than 64 bits.
    pub fn output_u64(&self, name: &str) -> Option<u64> {
        let tris = self.output_tri(name);
        assert!(tris.len() <= 64);
        let mut v = 0u64;
        for (i, t) in tris.iter().enumerate() {
            match t.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::Module;

    fn two_input_module(f: impl Fn(&mut Module, &SigSpec, &SigSpec) -> SigSpec) -> Program {
        let mut m = Module::new("t");
        let a = m.add_input("a", 8);
        let b = m.add_input("b", 8);
        let y = f(&mut m, &a, &b);
        m.add_output("y", &y);
        m.validate().unwrap();
        compile(&m).unwrap()
    }

    #[test]
    fn bitsim_add_matches_integers() {
        let prog = two_input_module(|m, a, b| m.add(a, b));
        let mut sim = BitSim::new(&prog);
        let av = [0u64, 1, 2, 3, 100, 255, 254, 77];
        let bv = [0u64, 1, 5, 250, 100, 255, 1, 200];
        sim.set_input("a", &av);
        sim.set_input("b", &bv);
        sim.eval_comb();
        let y = sim.output("y");
        for k in 0..av.len() {
            assert_eq!(y[k], (av[k] + bv[k]) & 0xff, "lane {k}");
        }
    }

    #[test]
    fn bitsim_compare_ops() {
        let prog = two_input_module(|m, a, b| m.lt(a, b));
        let mut sim = BitSim::new(&prog);
        let av = [0u64, 5, 200, 255, 13];
        let bv = [1u64, 5, 100, 255, 200];
        sim.set_input("a", &av);
        sim.set_input("b", &bv);
        sim.eval_comb();
        let y = sim.output("y");
        for k in 0..av.len() {
            assert_eq!(y[k], u64::from(av[k] < bv[k]), "lane {k}");
        }
    }

    #[test]
    fn bitsim_mul_matches() {
        let prog = two_input_module(|m, a, b| m.mul(a, b));
        let mut sim = BitSim::new(&prog);
        let av = [0u64, 3, 15, 255, 16];
        let bv = [7u64, 3, 17, 255, 16];
        sim.set_input("a", &av);
        sim.set_input("b", &bv);
        sim.eval_comb();
        let y = sim.output("y");
        for k in 0..av.len() {
            assert_eq!(y[k], (av[k] * bv[k]) & 0xff, "lane {k}");
        }
    }

    #[test]
    fn bitsim_shift_matches() {
        let prog = two_input_module(|m, a, b| {
            let amt = b.slice(0, 4);
            m.shl(a, &amt)
        });
        let mut sim = BitSim::new(&prog);
        let av = [1u64, 0xff, 0x80, 3];
        let bv = [0u64, 4, 1, 9];
        sim.set_input("a", &av);
        sim.set_input("b", &bv);
        sim.eval_comb();
        let y = sim.output("y");
        for k in 0..av.len() {
            assert_eq!(y[k], (av[k] << bv[k]) & 0xff, "lane {k}");
        }
    }

    #[test]
    fn pmux_priority_in_bitsim() {
        let mut m = Module::new("t");
        let d = m.add_input("d", 4);
        let w0 = m.add_input("w0", 4);
        let w1 = m.add_input("w1", 4);
        let s = m.add_input("s", 2);
        let y = m.pmux(&d, &[w0.clone(), w1.clone()], &s);
        m.add_output("y", &y);
        let prog = compile(&m).unwrap();
        let mut sim = BitSim::new(&prog);
        sim.set_input("d", &[0xF, 0xF, 0xF, 0xF]);
        sim.set_input("w0", &[1, 1, 1, 1]);
        sim.set_input("w1", &[2, 2, 2, 2]);
        sim.set_input("s", &[0b00, 0b01, 0b10, 0b11]);
        sim.eval_comb();
        assert_eq!(sim.output("y")[..4], [0xF, 1, 2, 1]);
    }

    #[test]
    fn sequential_counter_ticks() {
        let mut m = Module::new("cnt");
        let clk = m.add_input("clk", 1);
        let w = m.add_wire("q", 4);
        let qspec = SigSpec::from_wire(w, 4);
        m.mark_output(w);
        let one = SigSpec::const_u64(1, 4);
        let next = m.add(&qspec, &one);
        let q = m.dff(&clk, &next);
        m.connect(qspec, q);
        let prog = compile(&m).unwrap();
        let mut sim = BitSim::new(&prog);
        sim.set_input("clk", &[0]);
        for expect in 1..=20u64 {
            sim.tick();
            assert_eq!(sim.output("q")[0], expect % 16);
        }
    }

    #[test]
    fn trisim_x_propagates_and_bitsim_agrees_on_known() {
        let prog = two_input_module(|m, a, b| m.xor(a, b));
        let mut tri = TriSim::new(&prog);
        tri.set_input_u64("a", 0b1010);
        tri.set_input_tri("b", &[TriVal::X; 8]);
        tri.eval_comb();
        assert_eq!(tri.output_u64("y"), None);
        tri.set_input_u64("b", 0b0110);
        tri.eval_comb();
        assert_eq!(tri.output_u64("y"), Some(0b1100));
    }

    #[test]
    fn cone_replay_matches_bitsim_on_a_subcone() {
        use smartly_netlist::NetIndex;
        // y = (a & b) | c over 1-bit inputs; replay just the two cells
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let c = m.add_input("c", 1);
        let ab = m.and(&a, &b);
        let y = m.or(&ab, &c);
        m.add_output("y", &y);
        let index = NetIndex::build(&m);
        let cells: Vec<_> = m.topo_order().unwrap();
        let prog = compile_cone(&m, &index, &cells);
        assert!(!prog.has_x());
        assert_eq!(prog.op_count(), 2);
        assert_eq!(prog.leaves().len(), 3, "a, b, c are the cut");

        let mut sim = ConeSim::new(&prog);
        // exhaustive 8-lane truth table
        let planes = [0b10101010u64, 0b11001100, 0b11110000];
        for ((bit, slot), plane) in prog.leaves().iter().zip(planes) {
            assert!(!bit.is_const());
            sim.set_plane(*slot, plane);
        }
        sim.eval();
        let y_slot = prog.slot(index.canon(y.bit(0))).unwrap();
        let mut expect = 0u64;
        for lane in 0..8 {
            let v = |p: u64| (p >> lane) & 1 == 1;
            if (v(planes[0]) && v(planes[1])) || v(planes[2]) {
                expect |= 1 << lane;
            }
        }
        assert_eq!(sim.plane(y_slot) & 0xff, expect);
    }

    #[test]
    fn cone_detects_const_x() {
        use smartly_netlist::NetIndex;
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let x = SigSpec::from_bits(vec![SigBit::X]);
        let y = m.or(&a, &x);
        m.add_output("y", &y);
        let index = NetIndex::build(&m);
        let cells: Vec<_> = m.topo_order().unwrap();
        let prog = compile_cone(&m, &index, &cells);
        assert!(prog.has_x());
    }

    #[test]
    fn bitsim_and_trisim_agree_on_random_logic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            // random expression DAG over two 8-bit inputs
            let mut m = Module::new("t");
            let a = m.add_input("a", 8);
            let b = m.add_input("b", 8);
            let mut pool = vec![a.clone(), b.clone()];
            for _ in 0..12 {
                let i = rng.gen_range(0..pool.len());
                let j = rng.gen_range(0..pool.len());
                let (x, y) = (pool[i].clone(), pool[j].clone());
                let z = match rng.gen_range(0..8) {
                    0 => m.and(&x, &y),
                    1 => m.or(&x, &y),
                    2 => m.xor(&x, &y),
                    3 => m.add(&x, &y),
                    4 => m.sub(&x, &y),
                    5 => m.not(&x),
                    6 => {
                        let s = m.lt(&x, &y);
                        m.mux(&x, &y, &s)
                    }
                    _ => {
                        let e = m.eq(&x, &y);
                        e.zext(8)
                    }
                };
                pool.push(z);
            }
            let last = pool.last().unwrap().clone();
            m.add_output("y", &last);
            m.validate().unwrap();
            let prog = compile(&m).unwrap();

            let av: Vec<u64> = (0..32).map(|_| rng.gen_range(0..256)).collect();
            let bv: Vec<u64> = (0..32).map(|_| rng.gen_range(0..256)).collect();
            let mut bits = BitSim::new(&prog);
            bits.set_input("a", &av);
            bits.set_input("b", &bv);
            bits.eval_comb();
            let fast = bits.output("y");

            for k in 0..32 {
                let mut tri = TriSim::new(&prog);
                tri.set_input_u64("a", av[k]);
                tri.set_input_u64("b", bv[k]);
                tri.eval_comb();
                assert_eq!(tri.output_u64("y"), Some(fast[k]), "lane {k}");
            }
        }
    }
}
