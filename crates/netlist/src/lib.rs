//! Coarse-grain RTL netlist intermediate representation.
//!
//! This crate provides the word-level netlist IR that every other crate in
//! the smaRTLy reproduction operates on. It is modeled on Yosys' RTLIL:
//!
//! * a [`Module`] owns multi-bit [`Wire`]s and word-level [`Cell`]s;
//! * a [`SigBit`] is either a constant ([`TriVal`]) or one bit of a wire;
//! * a [`SigSpec`] is an ordered vector of bits — cell ports and module
//!   ports bind `SigSpec`s, so slicing and concatenation are free;
//! * module-level *connections* record signal aliases (`assign y = x;`),
//!   resolved on demand by [`NetIndex`].
//!
//! The cell library ([`CellKind`]) covers the subset of RTLIL exercised by
//! the paper: bitwise/logic/reduction gates, unsigned arithmetic and
//! comparison, shifts, `mux`/`pmux` (the stars of the show), and `dff`.
//!
//! # Mux semantics
//!
//! Following Yosys' `$mux`: `Y = S ? B : A`. A `pmux` has a default input
//! `A`, `n` stacked words on `B`, and an `n`-bit select `S`; the lowest set
//! select bit wins (priority semantics), and `S == 0` yields `A`.
//!
//! # Example
//!
//! ```
//! use smartly_netlist::{Module, SigSpec};
//!
//! let mut m = Module::new("demo");
//! let a = m.add_input("a", 8);
//! let b = m.add_input("b", 8);
//! let s = m.add_input("s", 1);
//! let y = m.mux(&a, &b, &s);
//! m.add_output("y", &y);
//! assert_eq!(m.live_cell_count(), 1);
//! m.validate().expect("well-formed netlist");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod cell;
mod design;
mod error;
mod eval;
mod index;
mod module;
mod stats;

pub use bits::{SigBit, SigSpec, TriVal};
pub use cell::{Cell, CellKind, Port};
pub use design::Design;
pub use error::NetlistError;
pub use eval::{eval_cell, CellInputs};
pub use index::{Consumer, Driver, NetIndex, Sink};
pub use module::{CellId, Module, ModulePort, PortDir, Wire, WireId};
pub use stats::CellStats;
