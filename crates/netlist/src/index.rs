//! Net connectivity index: alias resolution, drivers and fanouts — plus
//! the cell-fingerprint dirty-set protocol that lets cross-round caches
//! invalidate only the cones a netlist mutation actually touched.

use crate::bits::SigBit;
use crate::cell::Port;
use crate::module::{CellId, Module, PortDir};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// The driver of a wire bit: one bit of one cell's output port.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Driver {
    /// Driving cell.
    pub cell: CellId,
    /// Output port (`Y` or `Q`).
    pub port: Port,
    /// Bit offset within the output spec.
    pub offset: u32,
}

/// What consumes a bit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Consumer {
    /// A cell input port.
    Cell(CellId),
    /// A module output port (by name).
    Output(String),
}

/// One use of a bit: consumer, port and offset within the port spec.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Sink {
    /// Who reads the bit.
    pub consumer: Consumer,
    /// At which port (meaningless for `Consumer::Output`).
    pub port: Port,
    /// Bit offset within that port's spec.
    pub offset: u32,
}

/// A snapshot of a module's connectivity.
///
/// Built once per pass via [`NetIndex::build`]; invalidated by any
/// structural mutation. Module-level connections are resolved transitively,
/// so [`NetIndex::canon`] maps every bit to the bit that *actually* carries
/// its value (a cell output, an input-port bit, or a constant).
///
/// # Example
///
/// ```
/// use smartly_netlist::{Module, NetIndex};
///
/// let mut m = Module::new("t");
/// let a = m.add_input("a", 1);
/// let y = m.not(&a);
/// m.add_output("y", &y);
/// let index = NetIndex::build(&m);
/// // the output port wire resolves to the not-gate's output bit
/// let out_wire = m.find_wire("y").unwrap();
/// let canon = index.canon(smartly_netlist::SigBit::Wire(out_wire, 0));
/// assert!(index.driver(canon).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct NetIndex {
    alias: HashMap<SigBit, SigBit>,
    drivers: HashMap<SigBit, Driver>,
    fanouts: HashMap<SigBit, Vec<Sink>>,
}

impl NetIndex {
    /// Builds the index for `module`.
    ///
    /// # Panics
    ///
    /// Panics if the module's connection graph is cyclic (validated modules
    /// cannot be — a cycle requires a multiply-driven bit).
    pub fn build(module: &Module) -> Self {
        // 1. raw alias edges from module connections
        let mut raw: HashMap<SigBit, SigBit> = HashMap::new();
        for (dst, src) in module.connections() {
            for (d, s) in dst.iter().zip(src.iter()) {
                raw.insert(*d, *s);
            }
        }
        // 2. resolve transitively with path compression
        let mut alias: HashMap<SigBit, SigBit> = HashMap::new();
        for &start in raw.keys() {
            if alias.contains_key(&start) {
                continue;
            }
            let mut path = vec![start];
            let mut cur = start;
            loop {
                if let Some(&resolved) = alias.get(&cur) {
                    cur = resolved;
                    break;
                }
                match raw.get(&cur) {
                    Some(&next) => {
                        assert!(
                            !path.contains(&next),
                            "cyclic connection chain in module {}",
                            module.name
                        );
                        path.push(next);
                        cur = next;
                    }
                    None => break,
                }
            }
            for b in path {
                if b != cur {
                    alias.insert(b, cur);
                }
            }
        }

        let canon = |bit: SigBit| -> SigBit { alias.get(&bit).copied().unwrap_or(bit) };

        // 3. drivers: cell output bits
        let mut drivers = HashMap::new();
        for (id, cell) in module.cells() {
            let port = cell.kind.output_port();
            let out = cell.output();
            for (i, bit) in out.iter().enumerate() {
                drivers.insert(
                    canon(*bit),
                    Driver {
                        cell: id,
                        port,
                        offset: i as u32,
                    },
                );
            }
        }

        // 4. fanouts: cell inputs + module outputs
        let mut fanouts: HashMap<SigBit, Vec<Sink>> = HashMap::new();
        for (id, cell) in module.cells() {
            for (port, spec) in cell.inputs() {
                for (i, bit) in spec.iter().enumerate() {
                    fanouts.entry(canon(*bit)).or_default().push(Sink {
                        consumer: Consumer::Cell(id),
                        port,
                        offset: i as u32,
                    });
                }
            }
        }
        for p in module.ports() {
            if p.dir == PortDir::Output {
                let w = module.wire(p.wire).width;
                for i in 0..w {
                    let bit = canon(SigBit::Wire(p.wire, i));
                    fanouts.entry(bit).or_default().push(Sink {
                        consumer: Consumer::Output(p.name.clone()),
                        port: Port::Y,
                        offset: i,
                    });
                }
            }
        }

        NetIndex {
            alias,
            drivers,
            fanouts,
        }
    }

    /// Resolves a bit through module connections to its canonical source.
    pub fn canon(&self, bit: SigBit) -> SigBit {
        self.alias.get(&bit).copied().unwrap_or(bit)
    }

    /// The cell driving a canonical bit, if any.
    ///
    /// Pass the result of [`NetIndex::canon`]; a non-canonical bit has no
    /// driver entry.
    pub fn driver(&self, canonical_bit: SigBit) -> Option<Driver> {
        self.drivers.get(&canonical_bit).copied()
    }

    /// All sinks reading a canonical bit.
    pub fn fanout(&self, canonical_bit: SigBit) -> &[Sink] {
        self.fanouts
            .get(&canonical_bit)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sinks reading a canonical bit.
    pub fn fanout_count(&self, canonical_bit: SigBit) -> usize {
        self.fanout(canonical_bit).len()
    }

    /// Whether any sink of the bit is a module output port.
    pub fn feeds_output(&self, canonical_bit: SigBit) -> bool {
        self.fanout(canonical_bit)
            .iter()
            .any(|s| matches!(s.consumer, Consumer::Output(_)))
    }

    /// Sinks of a bit that are cells *other than* `exclude`.
    pub fn external_cell_fanout(&self, canonical_bit: SigBit, exclude: &[CellId]) -> usize {
        self.fanout(canonical_bit)
            .iter()
            .filter(|s| match &s.consumer {
                Consumer::Cell(c) => !exclude.contains(c),
                Consumer::Output(_) => true,
            })
            .count()
    }

    /// A per-cell structural fingerprint of every live cell: the cell's
    /// kind plus its raw port and output bits.
    ///
    /// Two snapshots taken around a batch of mutations diff into a *dirty
    /// set* ([`NetIndex::dirty_between`]): the cells that were removed or
    /// rewired in between. Cross-round caches (the redundancy pass's
    /// verdict memo) use the dirty set to drop exactly the entries whose
    /// cones a `clean`/`merge`/`restructure` pass touched, and carry the
    /// rest into the next round.
    ///
    /// Fingerprints hash *raw* (pre-canonicalization) bits, so a module
    /// connection change that re-aliases a wire without rewiring the cell
    /// is not flagged — sound for canonical-keyed caches, whose keys
    /// change (and therefore miss) whenever canonicalization shifts the
    /// extracted structure.
    pub fn fingerprints(module: &Module) -> HashMap<CellId, u64> {
        module
            .cells()
            .map(|(id, cell)| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                (cell.kind as u32).hash(&mut h);
                for (port, spec) in cell.inputs() {
                    (port as u32).hash(&mut h);
                    for b in spec.iter() {
                        b.hash(&mut h);
                    }
                }
                0xFFu32.hash(&mut h);
                for b in cell.output().iter() {
                    b.hash(&mut h);
                }
                (id, h.finish())
            })
            .collect()
    }

    /// The dirty set between two [`NetIndex::fingerprints`] snapshots:
    /// every cell of `before` that no longer exists in `after` or whose
    /// fingerprint changed. (Cells *added* since `before` are not dirty —
    /// no cache entry can cover a cell that did not exist yet.)
    pub fn dirty_between(
        before: &HashMap<CellId, u64>,
        after: &HashMap<CellId, u64>,
    ) -> HashSet<CellId> {
        before
            .iter()
            .filter(|(id, fp)| after.get(id) != Some(fp))
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::SigSpec;

    #[test]
    fn alias_chain_resolves() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let w1 = m.auto_wire(1);
        let w2 = m.auto_wire(1);
        let s1 = SigSpec::from_wire(w1, 1);
        let s2 = SigSpec::from_wire(w2, 1);
        m.connect(s1.clone(), a.clone());
        m.connect(s2.clone(), s1);
        let idx = NetIndex::build(&m);
        assert_eq!(idx.canon(SigBit::Wire(w2, 0)), a.bit(0));
        assert_eq!(idx.canon(SigBit::Wire(w1, 0)), a.bit(0));
    }

    #[test]
    fn fanout_counts_cells_and_outputs() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let y1 = m.not(&a);
        let _y2 = m.not(&a);
        m.add_output("o", &a);
        let idx = NetIndex::build(&m);
        assert_eq!(idx.fanout_count(a.bit(0)), 3);
        assert!(idx.feeds_output(a.bit(0)));
        assert_eq!(idx.fanout_count(idx.canon(y1.bit(0))), 0);
    }

    #[test]
    fn fingerprints_flag_exactly_the_touched_cells() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.and(&a, &b);
        let y = m.or(&a, &b);
        m.add_output("x", &x);
        m.add_output("y", &y);
        let before = NetIndex::fingerprints(&m);
        assert_eq!(NetIndex::dirty_between(&before, &before).len(), 0);

        // rewire the and-gate's B pin to a constant; the or-gate is
        // untouched
        let and_id = m
            .cells()
            .find(|(_, c)| c.kind == crate::cell::CellKind::And)
            .map(|(id, _)| id)
            .unwrap();
        let or_id = m
            .cells()
            .find(|(_, c)| c.kind == crate::cell::CellKind::Or)
            .map(|(id, _)| id)
            .unwrap();
        let spec = m
            .cell_mut(and_id)
            .unwrap()
            .port_mut(Port::B)
            .expect("and has B");
        spec.bits_mut()[0] = SigBit::Const(crate::bits::TriVal::One);
        let after = NetIndex::fingerprints(&m);
        let dirty = NetIndex::dirty_between(&before, &after);
        assert!(dirty.contains(&and_id));
        assert!(!dirty.contains(&or_id));

        // removing a cell dirties it too
        m.remove_cell(or_id);
        let after2 = NetIndex::fingerprints(&m);
        let dirty2 = NetIndex::dirty_between(&before, &after2);
        assert!(dirty2.contains(&or_id));
    }

    #[test]
    fn driver_is_cell_output() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 2);
        let y = m.not(&a);
        let idx = NetIndex::build(&m);
        let d = idx.driver(idx.canon(y.bit(1))).unwrap();
        assert_eq!(d.offset, 1);
        assert_eq!(d.port, Port::Y);
        assert!(idx.driver(a.bit(0)).is_none());
    }
}
