//! Signal bits and bit vectors.

use crate::module::WireId;
use std::fmt;
use std::ops::Index;

/// A three-valued logic constant: `0`, `1`, or unknown (`x`).
///
/// `x` propagates pessimistically through [`crate::eval_cell`]; it shows up
/// in elaborated netlists for uninitialized `casez` don't-care bits and for
/// explicitly undriven signals.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriVal {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / don't-care.
    X,
}

impl TriVal {
    /// Converts a boolean into `Zero`/`One`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            TriVal::One
        } else {
            TriVal::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            TriVal::Zero => Some(false),
            TriVal::One => Some(true),
            TriVal::X => None,
        }
    }

    /// Whether the value is `0` or `1` (not `X`).
    pub fn is_known(self) -> bool {
        self != TriVal::X
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            TriVal::Zero => TriVal::One,
            TriVal::One => TriVal::Zero,
            TriVal::X => TriVal::X,
        }
    }

    /// Three-valued AND (`0` dominates `X`).
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (TriVal::Zero, _) | (_, TriVal::Zero) => TriVal::Zero,
            (TriVal::One, TriVal::One) => TriVal::One,
            _ => TriVal::X,
        }
    }

    /// Three-valued OR (`1` dominates `X`).
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (TriVal::One, _) | (_, TriVal::One) => TriVal::One,
            (TriVal::Zero, TriVal::Zero) => TriVal::Zero,
            _ => TriVal::X,
        }
    }

    /// Three-valued XOR (`X` taints).
    pub fn xor(self, other: Self) -> Self {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => TriVal::from_bool(a ^ b),
            _ => TriVal::X,
        }
    }
}

impl fmt::Display for TriVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriVal::Zero => write!(f, "0"),
            TriVal::One => write!(f, "1"),
            TriVal::X => write!(f, "x"),
        }
    }
}

/// One bit of a signal: a constant or a single bit of a [`Wire`].
///
/// [`Wire`]: crate::Wire
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SigBit {
    /// A constant bit.
    Const(TriVal),
    /// Bit `offset` of wire `WireId`.
    Wire(WireId, u32),
}

impl SigBit {
    /// Constant zero bit.
    pub const ZERO: SigBit = SigBit::Const(TriVal::Zero);
    /// Constant one bit.
    pub const ONE: SigBit = SigBit::Const(TriVal::One);
    /// Constant unknown bit.
    pub const X: SigBit = SigBit::Const(TriVal::X);

    /// Whether this bit is a constant (including `x`).
    pub fn is_const(self) -> bool {
        matches!(self, SigBit::Const(_))
    }

    /// Returns the constant value if this is a constant bit.
    pub fn as_const(self) -> Option<TriVal> {
        match self {
            SigBit::Const(v) => Some(v),
            SigBit::Wire(..) => None,
        }
    }

    /// Returns the wire reference if this is a wire bit.
    pub fn as_wire(self) -> Option<(WireId, u32)> {
        match self {
            SigBit::Wire(w, o) => Some((w, o)),
            SigBit::Const(_) => None,
        }
    }
}

impl From<TriVal> for SigBit {
    fn from(v: TriVal) -> Self {
        SigBit::Const(v)
    }
}

impl From<bool> for SigBit {
    fn from(b: bool) -> Self {
        SigBit::Const(TriVal::from_bool(b))
    }
}

/// An ordered vector of [`SigBit`]s; bit 0 is the least significant bit.
///
/// `SigSpec` is the currency of the IR: every cell port and module port
/// binds one, and slicing/concatenation never touch the underlying wires.
///
/// # Example
///
/// ```
/// use smartly_netlist::SigSpec;
///
/// let c = SigSpec::const_u64(0b1010, 4);
/// assert_eq!(c.width(), 4);
/// assert_eq!(c.as_const_u64(), Some(0b1010));
/// assert_eq!(c.slice(1, 2).as_const_u64(), Some(0b01));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SigSpec(Vec<SigBit>);

impl SigSpec {
    /// Creates an empty (zero-width) spec.
    pub fn new() -> Self {
        SigSpec(Vec::new())
    }

    /// Creates a spec from a bit vector (bit 0 = LSB).
    pub fn from_bits(bits: Vec<SigBit>) -> Self {
        SigSpec(bits)
    }

    /// Creates a single-bit spec.
    pub fn from_bit(bit: SigBit) -> Self {
        SigSpec(vec![bit])
    }

    /// Creates a spec covering all `width` bits of `wire`.
    pub fn from_wire(wire: WireId, width: u32) -> Self {
        SigSpec((0..width).map(|i| SigBit::Wire(wire, i)).collect())
    }

    /// Creates a constant spec from the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn const_u64(value: u64, width: u32) -> Self {
        assert!(width <= 64, "const_u64 supports at most 64 bits");
        SigSpec(
            (0..width)
                .map(|i| SigBit::Const(TriVal::from_bool((value >> i) & 1 == 1)))
                .collect(),
        )
    }

    /// Creates an all-zero constant spec.
    pub fn zeros(width: u32) -> Self {
        SigSpec(vec![SigBit::ZERO; width as usize])
    }

    /// Creates an all-one constant spec.
    pub fn ones(width: u32) -> Self {
        SigSpec(vec![SigBit::ONE; width as usize])
    }

    /// Creates an all-`x` constant spec.
    pub fn xes(width: u32) -> Self {
        SigSpec(vec![SigBit::X; width as usize])
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Whether the spec has zero bits.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit(&self, index: usize) -> SigBit {
        self.0[index]
    }

    /// All bits as a slice.
    pub fn bits(&self) -> &[SigBit] {
        &self.0
    }

    /// Mutable access to the bits.
    pub fn bits_mut(&mut self) -> &mut [SigBit] {
        &mut self.0
    }

    /// Consumes the spec, returning the bit vector.
    pub fn into_bits(self) -> Vec<SigBit> {
        self.0
    }

    /// Returns bits `[start, start + len)` as a new spec.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the width.
    pub fn slice(&self, start: usize, len: usize) -> SigSpec {
        SigSpec(self.0[start..start + len].to_vec())
    }

    /// Appends `other`'s bits above this spec's MSB.
    pub fn concat(&mut self, other: &SigSpec) {
        self.0.extend_from_slice(&other.0);
    }

    /// Returns a new spec extended with constant zeros up to `width`
    /// (or truncated down to `width`).
    pub fn zext(&self, width: u32) -> SigSpec {
        let mut bits = self.0.clone();
        bits.resize(width as usize, SigBit::ZERO);
        SigSpec(bits)
    }

    /// Whether every bit is a constant (possibly `x`).
    pub fn is_fully_const(&self) -> bool {
        self.0.iter().all(|b| b.is_const())
    }

    /// Whether every bit is a *known* constant (`0`/`1`).
    pub fn is_fully_def(&self) -> bool {
        self.0
            .iter()
            .all(|b| matches!(b, SigBit::Const(v) if v.is_known()))
    }

    /// Interprets the spec as an unsigned integer if all bits are known
    /// constants and the width is at most 64.
    pub fn as_const_u64(&self) -> Option<u64> {
        if self.width() > 64 {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.0.iter().enumerate() {
            match b {
                SigBit::Const(TriVal::One) => v |= 1 << i,
                SigBit::Const(TriVal::Zero) => {}
                _ => return None,
            }
        }
        Some(v)
    }

    /// Interprets the spec as a vector of [`TriVal`]s if fully constant.
    pub fn as_const_trivals(&self) -> Option<Vec<TriVal>> {
        self.0.iter().map(|b| b.as_const()).collect()
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> std::slice::Iter<'_, SigBit> {
        self.0.iter()
    }

    /// Returns the set of distinct wires referenced by this spec.
    pub fn wires(&self) -> Vec<WireId> {
        let mut out = Vec::new();
        for b in &self.0 {
            if let SigBit::Wire(w, _) = b {
                if !out.contains(w) {
                    out.push(*w);
                }
            }
        }
        out
    }
}

impl Index<usize> for SigSpec {
    type Output = SigBit;
    fn index(&self, index: usize) -> &SigBit {
        &self.0[index]
    }
}

impl From<SigBit> for SigSpec {
    fn from(bit: SigBit) -> Self {
        SigSpec::from_bit(bit)
    }
}

impl FromIterator<SigBit> for SigSpec {
    fn from_iter<I: IntoIterator<Item = SigBit>>(iter: I) -> Self {
        SigSpec(iter.into_iter().collect())
    }
}

impl Extend<SigBit> for SigSpec {
    fn extend<I: IntoIterator<Item = SigBit>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl<'a> IntoIterator for &'a SigSpec {
    type Item = &'a SigBit;
    type IntoIter = std::slice::Iter<'a, SigBit>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for SigSpec {
    type Item = SigBit;
    type IntoIter = std::vec::IntoIter<SigBit>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl fmt::Display for SigSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'", self.width())?;
        for b in self.0.iter().rev() {
            match b {
                SigBit::Const(v) => write!(f, "{v}")?,
                SigBit::Wire(w, o) => write!(f, "[w{}.{}]", w.index(), o)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trival_tables() {
        use TriVal::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(Zero), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Zero.not(), One);
    }

    #[test]
    fn const_round_trip() {
        for v in [0u64, 1, 5, 0xff, 0xdead] {
            let s = SigSpec::const_u64(v, 16);
            assert_eq!(s.as_const_u64(), Some(v & 0xffff));
        }
    }

    #[test]
    fn x_is_not_def() {
        let mut s = SigSpec::const_u64(3, 4);
        assert!(s.is_fully_def());
        s.bits_mut()[2] = SigBit::X;
        assert!(s.is_fully_const());
        assert!(!s.is_fully_def());
        assert_eq!(s.as_const_u64(), None);
    }

    #[test]
    fn slice_concat_zext() {
        let a = SigSpec::const_u64(0b1100, 4);
        let lo = a.slice(0, 2);
        assert_eq!(lo.as_const_u64(), Some(0));
        let hi = a.slice(2, 2);
        assert_eq!(hi.as_const_u64(), Some(0b11));
        let mut c = lo;
        c.concat(&hi);
        assert_eq!(c.as_const_u64(), Some(0b1100));
        assert_eq!(c.zext(6).as_const_u64(), Some(0b1100));
        assert_eq!(c.zext(3).as_const_u64(), Some(0b100));
    }
}
