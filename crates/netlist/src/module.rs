//! Modules: wires, cells, ports, connections and builders.

use crate::bits::{SigBit, SigSpec};
use crate::cell::{Cell, CellKind, Port};
use crate::error::NetlistError;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifies a [`Wire`] within its [`Module`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireId(u32);

impl WireId {
    /// The raw index of the wire in its module.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a [`Cell`] within its [`Module`].
///
/// Cell ids are stable across removals (removal leaves a tombstone), so
/// passes can hold ids while rewriting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u32);

impl CellId {
    /// The raw index of the cell in its module.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named multi-bit net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wire {
    /// Human-readable name (unique per module for named wires).
    pub name: String,
    /// Bit width (≥ 1).
    pub width: u32,
}

/// Port direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
}

/// A module-level port: a direction attached to a wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModulePort {
    /// Port name (matches the wire name).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The backing wire.
    pub wire: WireId,
}

/// A hardware module: the unit every pass operates on.
///
/// See the [crate-level documentation](crate) for an overview and an
/// example. Builder methods (e.g. [`Module::mux`], [`Module::eq`]) append a
/// cell, allocate an output wire of the correct width, and return the
/// output as a [`SigSpec`].
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    wires: Vec<Wire>,
    cells: Vec<Option<Cell>>,
    ports: Vec<ModulePort>,
    connections: Vec<(SigSpec, SigSpec)>,
    auto_counter: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            wires: Vec::new(),
            cells: Vec::new(),
            ports: Vec::new(),
            connections: Vec::new(),
            auto_counter: 0,
        }
    }

    // ---------------------------------------------------------------- wires

    /// Adds a named wire of `width` bits.
    pub fn add_wire(&mut self, name: impl Into<String>, width: u32) -> WireId {
        let id = WireId(self.wires.len() as u32);
        self.wires.push(Wire {
            name: name.into(),
            width,
        });
        id
    }

    /// Adds an internal wire with a generated (`$auto$N`) name.
    pub fn auto_wire(&mut self, width: u32) -> WireId {
        let n = self.auto_counter;
        self.auto_counter += 1;
        self.add_wire(format!("$auto${n}"), width)
    }

    /// The wire behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this module.
    pub fn wire(&self, id: WireId) -> &Wire {
        &self.wires[id.index()]
    }

    /// Iterates over all wires.
    pub fn wires(&self) -> impl Iterator<Item = (WireId, &Wire)> {
        self.wires
            .iter()
            .enumerate()
            .map(|(i, w)| (WireId(i as u32), w))
    }

    /// Looks up a wire by name.
    pub fn find_wire(&self, name: &str) -> Option<WireId> {
        self.wires
            .iter()
            .position(|w| w.name == name)
            .map(|i| WireId(i as u32))
    }

    /// A spec covering all bits of `wire`.
    pub fn wire_spec(&self, wire: WireId) -> SigSpec {
        SigSpec::from_wire(wire, self.wire(wire).width)
    }

    // ---------------------------------------------------------------- ports

    /// Adds an input port and returns its full spec.
    pub fn add_input(&mut self, name: &str, width: u32) -> SigSpec {
        let wire = self.add_wire(name, width);
        self.ports.push(ModulePort {
            name: name.to_string(),
            dir: PortDir::Input,
            wire,
        });
        SigSpec::from_wire(wire, width)
    }

    /// Adds an output port driven by `src` and returns the port's wire.
    ///
    /// Internally records a connection `port_wire <- src`.
    pub fn add_output(&mut self, name: &str, src: &SigSpec) -> WireId {
        let wire = self.add_wire(name, src.width() as u32);
        self.ports.push(ModulePort {
            name: name.to_string(),
            dir: PortDir::Output,
            wire,
        });
        let dst = SigSpec::from_wire(wire, src.width() as u32);
        self.connect(dst, src.clone());
        wire
    }

    /// Declares an existing wire as an output port (no new wire, no alias).
    pub fn mark_output(&mut self, wire: WireId) {
        let name = self.wire(wire).name.clone();
        self.ports.push(ModulePort {
            name,
            dir: PortDir::Output,
            wire,
        });
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> &[ModulePort] {
        &self.ports
    }

    /// Input ports only.
    pub fn input_ports(&self) -> impl Iterator<Item = &ModulePort> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Output ports only.
    pub fn output_ports(&self) -> impl Iterator<Item = &ModulePort> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }

    // ---------------------------------------------------------- connections

    /// Records that `dst` is an alias for (is driven by) `src`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or `dst` contains constant bits.
    pub fn connect(&mut self, dst: SigSpec, src: SigSpec) {
        assert_eq!(
            dst.width(),
            src.width(),
            "connection width mismatch in module {}",
            self.name
        );
        assert!(
            dst.iter().all(|b| !b.is_const()),
            "connection destination must be wire bits"
        );
        self.connections.push((dst, src));
    }

    /// All module-level connections.
    pub fn connections(&self) -> &[(SigSpec, SigSpec)] {
        &self.connections
    }

    /// Mutable access to the connections (used by cleanup passes).
    pub fn connections_mut(&mut self) -> &mut Vec<(SigSpec, SigSpec)> {
        &mut self.connections
    }

    // ---------------------------------------------------------------- cells

    /// Appends `cell` and returns its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Some(cell));
        id
    }

    /// The live cell behind `id`, if it has not been removed.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.index()).and_then(|c| c.as_ref())
    }

    /// Mutable access to a live cell.
    pub fn cell_mut(&mut self, id: CellId) -> Option<&mut Cell> {
        self.cells.get_mut(id.index()).and_then(|c| c.as_mut())
    }

    /// Removes a cell, leaving a tombstone so other ids stay valid.
    ///
    /// Returns the removed cell, or `None` if it was already gone.
    pub fn remove_cell(&mut self, id: CellId) -> Option<Cell> {
        self.cells.get_mut(id.index()).and_then(|c| c.take())
    }

    /// Iterates over live cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CellId(i as u32), c)))
    }

    /// Ids of all live cells (snapshot, safe to iterate while mutating).
    pub fn cell_ids(&self) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| CellId(i as u32)))
            .collect()
    }

    /// Number of live cells.
    pub fn live_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    // ------------------------------------------------------------- builders

    fn build_cell(&mut self, kind: CellKind, conns: Vec<(Port, SigSpec)>, y_width: u32) -> SigSpec {
        let y = self.auto_wire(y_width);
        let y_spec = SigSpec::from_wire(y, y_width);
        let mut cell = Cell::new(kind, format!("${}${}", kind.name(), y.index()));
        for (p, s) in conns {
            cell.set_port(p, s);
        }
        cell.set_port(kind.output_port(), y_spec.clone());
        self.add_cell(cell);
        y_spec
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &SigSpec) -> SigSpec {
        let w = a.width() as u32;
        self.build_cell(CellKind::Not, vec![(Port::A, a.clone())], w)
    }

    fn binary_same_width(&mut self, kind: CellKind, a: &SigSpec, b: &SigSpec) -> SigSpec {
        let w = a.width().max(b.width()) as u32;
        let a = a.zext(w);
        let b = b.zext(w);
        self.build_cell(kind, vec![(Port::A, a), (Port::B, b)], w)
    }

    /// Bitwise AND (operands zero-extended to the wider width).
    pub fn and(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Xor, a, b)
    }

    /// Bitwise XNOR.
    pub fn xnor(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Xnor, a, b)
    }

    /// AND-reduction to one bit.
    pub fn reduce_and(&mut self, a: &SigSpec) -> SigSpec {
        self.build_cell(CellKind::ReduceAnd, vec![(Port::A, a.clone())], 1)
    }

    /// OR-reduction to one bit.
    pub fn reduce_or(&mut self, a: &SigSpec) -> SigSpec {
        self.build_cell(CellKind::ReduceOr, vec![(Port::A, a.clone())], 1)
    }

    /// XOR-reduction (parity) to one bit.
    pub fn reduce_xor(&mut self, a: &SigSpec) -> SigSpec {
        self.build_cell(CellKind::ReduceXor, vec![(Port::A, a.clone())], 1)
    }

    /// Boolean coercion `(A != 0)`.
    pub fn reduce_bool(&mut self, a: &SigSpec) -> SigSpec {
        if a.width() == 1 {
            return a.clone();
        }
        self.build_cell(CellKind::ReduceBool, vec![(Port::A, a.clone())], 1)
    }

    /// Logical NOT `(A == 0)`.
    pub fn logic_not(&mut self, a: &SigSpec) -> SigSpec {
        self.build_cell(CellKind::LogicNot, vec![(Port::A, a.clone())], 1)
    }

    /// Logical AND.
    pub fn logic_and(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.build_cell(
            CellKind::LogicAnd,
            vec![(Port::A, a.clone()), (Port::B, b.clone())],
            1,
        )
    }

    /// Logical OR.
    pub fn logic_or(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.build_cell(
            CellKind::LogicOr,
            vec![(Port::A, a.clone()), (Port::B, b.clone())],
            1,
        )
    }

    /// Unsigned addition (width = max operand width).
    pub fn add(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Add, a, b)
    }

    /// Unsigned wrapping subtraction.
    pub fn sub(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Sub, a, b)
    }

    /// Unsigned truncating multiplication.
    pub fn mul(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.binary_same_width(CellKind::Mul, a, b)
    }

    /// Logical shift left.
    pub fn shl(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        let w = a.width() as u32;
        self.build_cell(
            CellKind::Shl,
            vec![(Port::A, a.clone()), (Port::B, b.clone())],
            w,
        )
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        let w = a.width() as u32;
        self.build_cell(
            CellKind::Shr,
            vec![(Port::A, a.clone()), (Port::B, b.clone())],
            w,
        )
    }

    fn compare(&mut self, kind: CellKind, a: &SigSpec, b: &SigSpec) -> SigSpec {
        let w = a.width().max(b.width()) as u32;
        let a = a.zext(w);
        let b = b.zext(w);
        self.build_cell(kind, vec![(Port::A, a), (Port::B, b)], 1)
    }

    /// Equality compare (1-bit result).
    pub fn eq(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Eq, a, b)
    }

    /// Inequality compare.
    pub fn ne(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Ne, a, b)
    }

    /// Unsigned less-than.
    pub fn lt(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Lt, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn le(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Le, a, b)
    }

    /// Unsigned greater-than.
    pub fn gt(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Gt, a, b)
    }

    /// Unsigned greater-or-equal.
    pub fn ge(&mut self, a: &SigSpec, b: &SigSpec) -> SigSpec {
        self.compare(CellKind::Ge, a, b)
    }

    /// 2-to-1 multiplexer: `Y = S ? B : A`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` widths differ or `s` is not 1 bit.
    pub fn mux(&mut self, a: &SigSpec, b: &SigSpec, s: &SigSpec) -> SigSpec {
        assert_eq!(a.width(), b.width(), "mux data width mismatch");
        assert_eq!(s.width(), 1, "mux select must be 1 bit");
        let w = a.width() as u32;
        self.build_cell(
            CellKind::Mux,
            vec![
                (Port::A, a.clone()),
                (Port::B, b.clone()),
                (Port::S, s.clone()),
            ],
            w,
        )
    }

    /// Parallel (priority) multiplexer: `words[i]` wins for the lowest set
    /// select bit `i`; `default` when all selects are 0.
    ///
    /// # Panics
    ///
    /// Panics if word widths differ or the select count does not match.
    pub fn pmux(&mut self, default: &SigSpec, words: &[SigSpec], sels: &SigSpec) -> SigSpec {
        assert_eq!(words.len(), sels.width(), "pmux select/word count mismatch");
        let w = default.width() as u32;
        let mut b = SigSpec::new();
        for word in words {
            assert_eq!(word.width() as u32, w, "pmux word width mismatch");
            b.concat(word);
        }
        self.build_cell(
            CellKind::Pmux,
            vec![
                (Port::A, default.clone()),
                (Port::B, b),
                (Port::S, sels.clone()),
            ],
            w,
        )
    }

    /// Positive-edge D flip-flop; returns `Q`.
    pub fn dff(&mut self, clk: &SigSpec, d: &SigSpec) -> SigSpec {
        assert_eq!(clk.width(), 1, "dff clock must be 1 bit");
        let w = d.width() as u32;
        self.build_cell(
            CellKind::Dff,
            vec![(Port::Clk, clk.clone()), (Port::D, d.clone())],
            w,
        )
    }

    // ----------------------------------------------------------- validation

    /// Checks width discipline and single-driver discipline.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] when a cell violates the
    /// width table documented on [`CellKind`], and
    /// [`NetlistError::MultipleDrivers`] when a wire bit is driven by more
    /// than one of {cell output, input port, connection destination}.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, cell) in self.cells() {
            self.validate_cell(id, cell)?;
        }
        // single-driver check
        let mut driven: HashSet<SigBit> = HashSet::new();
        let mut claim = |bit: SigBit, what: &str, name: &str| -> Result<(), NetlistError> {
            if bit.is_const() {
                return Err(NetlistError::ConstDriven {
                    module: self.name.clone(),
                    context: format!("{what} {name}"),
                });
            }
            if !driven.insert(bit) {
                return Err(NetlistError::MultipleDrivers {
                    module: self.name.clone(),
                    bit: format!("{bit:?}"),
                    context: format!("{what} {name}"),
                });
            }
            Ok(())
        };
        for p in self.input_ports() {
            for i in 0..self.wire(p.wire).width {
                claim(SigBit::Wire(p.wire, i), "input port", &p.name)?;
            }
        }
        for (_, cell) in self.cells() {
            let out = cell.output();
            for b in out.iter() {
                claim(*b, "cell output", &cell.name)?;
            }
        }
        for (dst, _) in &self.connections {
            for b in dst.iter() {
                claim(*b, "connection", "dst")?;
            }
        }
        Ok(())
    }

    fn validate_cell(&self, _id: CellId, cell: &Cell) -> Result<(), NetlistError> {
        use CellKind::*;
        let err = |msg: String| {
            Err(NetlistError::WidthMismatch {
                module: self.name.clone(),
                cell: cell.name.clone(),
                detail: msg,
            })
        };
        let w = |p: Port| -> usize { cell.port(p).map(|s| s.width()).unwrap_or(usize::MAX) };
        for p in cell.kind.ports() {
            if cell.port(*p).is_none() {
                return err(format!("port {p} unbound"));
            }
        }
        match cell.kind {
            Not => {
                if w(Port::A) != w(Port::Y) {
                    return err("not: w(A) != w(Y)".into());
                }
            }
            And | Or | Xor | Xnor => {
                if w(Port::A) != w(Port::B) || w(Port::A) != w(Port::Y) {
                    return err(format!("{}: operand widths differ", cell.kind));
                }
            }
            ReduceAnd | ReduceOr | ReduceXor | ReduceBool | LogicNot => {
                if w(Port::Y) != 1 {
                    return err(format!("{}: w(Y) != 1", cell.kind));
                }
            }
            LogicAnd | LogicOr => {
                if w(Port::Y) != 1 {
                    return err(format!("{}: w(Y) != 1", cell.kind));
                }
            }
            Add | Sub | Mul => {
                if w(Port::A) != w(Port::B) || w(Port::A) != w(Port::Y) {
                    return err(format!("{}: operand widths differ", cell.kind));
                }
            }
            Shl | Shr => {
                if w(Port::A) != w(Port::Y) {
                    return err(format!("{}: w(A) != w(Y)", cell.kind));
                }
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                if w(Port::A) != w(Port::B) {
                    return err(format!("{}: w(A) != w(B)", cell.kind));
                }
                if w(Port::Y) != 1 {
                    return err(format!("{}: w(Y) != 1", cell.kind));
                }
            }
            Mux => {
                if w(Port::A) != w(Port::B) || w(Port::A) != w(Port::Y) {
                    return err("mux: data widths differ".into());
                }
                if w(Port::S) != 1 {
                    return err("mux: w(S) != 1".into());
                }
            }
            Pmux => {
                let n = w(Port::S);
                if n == 0 {
                    return err("pmux: empty select".into());
                }
                if w(Port::B) != w(Port::A) * n {
                    return err("pmux: w(B) != w(A) * w(S)".into());
                }
                if w(Port::A) != w(Port::Y) {
                    return err("pmux: w(A) != w(Y)".into());
                }
            }
            Dff => {
                if w(Port::Clk) != 1 {
                    return err("dff: w(CLK) != 1".into());
                }
                if w(Port::D) != w(Port::Q) {
                    return err("dff: w(D) != w(Q)".into());
                }
            }
        }
        Ok(())
    }

    /// Topologically orders live cells over combinational edges.
    ///
    /// `dff` cells are sources (their `Q` does not depend on `D` within a
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of the module is cyclic.
    pub fn topo_order(&self) -> Result<Vec<CellId>, NetlistError> {
        // map: canonical driven bit -> driving cell (combinational only)
        let index = crate::index::NetIndex::build(self);
        let mut order = Vec::new();
        let mut state: HashMap<CellId, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let ids = self.cell_ids();

        // iterative DFS to avoid stack overflow on deep chains
        for root in ids {
            if state.get(&root).copied() == Some(2) {
                continue;
            }
            let mut stack: Vec<(CellId, usize)> = vec![(root, 0)];
            while let Some((id, phase)) = stack.pop() {
                match state.get(&id).copied() {
                    Some(2) => continue,
                    Some(1) if phase == 0 => {
                        return Err(NetlistError::CombinationalCycle {
                            module: self.name.clone(),
                        });
                    }
                    _ => {}
                }
                if phase == 1 {
                    state.insert(id, 2);
                    order.push(id);
                    continue;
                }
                state.insert(id, 1);
                stack.push((id, 1));
                let cell = self.cell(id).expect("live cell");
                if cell.kind.is_sequential() {
                    continue; // dff: no combinational input deps
                }
                for (_, spec) in cell.inputs() {
                    for bit in spec.iter() {
                        let canon = index.canon(*bit);
                        if let Some(drv) = index.driver(canon) {
                            let dc = self.cell(drv.cell).expect("live driver");
                            if !dc.kind.is_sequential() {
                                match state.get(&drv.cell).copied() {
                                    Some(1) => {
                                        return Err(NetlistError::CombinationalCycle {
                                            module: self.name.clone(),
                                        });
                                    }
                                    Some(_) => {}
                                    None => stack.push((drv.cell, 0)),
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(order)
    }

    /// Per-kind live cell counts.
    pub fn stats(&self) -> crate::stats::CellStats {
        crate::stats::CellStats::of(self)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module {} ({} wires, {} cells)",
            self.name,
            self.wires.len(),
            self.live_cell_count()
        )?;
        for (_, cell) in self.cells() {
            write!(f, "  {} {}(", cell.kind, cell.name)?;
            for (i, (p, s)) in cell.connections().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, ".{p}({s})")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::TriVal;

    #[test]
    fn builder_widths() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let s = m.add_input("s", 1);
        let y = m.mux(&a, &b, &s);
        assert_eq!(y.width(), 4);
        let e = m.eq(&a, &SigSpec::const_u64(3, 4));
        assert_eq!(e.width(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_mux() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let y = m.auto_wire(4);
        let mut c = Cell::new(CellKind::Mux, "bad");
        c.set_port(Port::A, a.clone());
        c.set_port(Port::B, a.slice(0, 2).zext(4));
        c.set_port(Port::S, a.slice(0, 2)); // 2-bit select: invalid
        c.set_port(Port::Y, SigSpec::from_wire(y, 4));
        m.add_cell(c);
        assert!(matches!(
            m.validate(),
            Err(NetlistError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let w = m.auto_wire(1);
        let spec = SigSpec::from_wire(w, 1);
        m.connect(spec.clone(), a.clone());
        m.connect(spec, SigSpec::from_bit(SigBit::Const(TriVal::One)));
        assert!(matches!(
            m.validate(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn topo_orders_chain() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let n1 = m.not(&a);
        let n2 = m.not(&n1);
        let n3 = m.not(&n2);
        m.add_output("y", &n3);
        let order = m.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        // drivers must come before users
        let pos: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let ids = m.cell_ids();
        assert!(pos[&ids[0]] < pos[&ids[1]]);
        assert!(pos[&ids[1]] < pos[&ids[2]]);
    }

    #[test]
    fn topo_detects_cycle() {
        let mut m = Module::new("t");
        let w1 = m.auto_wire(1);
        let w2 = m.auto_wire(1);
        let s1 = SigSpec::from_wire(w1, 1);
        let s2 = SigSpec::from_wire(w2, 1);
        let mut c1 = Cell::new(CellKind::Not, "n1");
        c1.set_port(Port::A, s2.clone());
        c1.set_port(Port::Y, s1.clone());
        m.add_cell(c1);
        let mut c2 = Cell::new(CellKind::Not, "n2");
        c2.set_port(Port::A, s1);
        c2.set_port(Port::Y, s2);
        m.add_cell(c2);
        assert!(matches!(
            m.topo_order(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        // q = dff(not(q)) : a toggle; sequential loop is fine
        let w = m.auto_wire(1);
        let q = SigSpec::from_wire(w, 1);
        let nq = m.not(&q);
        let q2 = m.dff(&clk, &nq);
        m.connect(q, q2);
        assert!(m.topo_order().is_ok());
    }

    #[test]
    fn remove_leaves_tombstone() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let y1 = m.not(&a);
        let _y2 = m.not(&y1);
        let ids = m.cell_ids();
        assert_eq!(m.live_cell_count(), 2);
        m.remove_cell(ids[0]);
        assert_eq!(m.live_cell_count(), 1);
        assert!(m.cell(ids[0]).is_none());
        assert!(m.cell(ids[1]).is_some());
    }
}
