//! A design: a collection of modules.

use crate::module::Module;

/// A collection of [`Module`]s, as produced by the Verilog frontend.
///
/// The smaRTLy passes operate module-by-module; `Design` exists so a
/// multi-module source file round-trips. The *top* module is the first one
/// added unless overridden with [`Design::set_top`].
#[derive(Clone, Debug, Default)]
pub struct Design {
    modules: Vec<Module>,
    top: Option<usize>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module, returning its index.
    pub fn add_module(&mut self, module: Module) -> usize {
        self.modules.push(module);
        self.modules.len() - 1
    }

    /// All modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Mutable access to all modules.
    pub fn modules_mut(&mut self) -> &mut [Module] {
        &mut self.modules
    }

    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Mutable lookup by name.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// Marks the module at `index` as top.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_top(&mut self, index: usize) {
        assert!(index < self.modules.len(), "top index out of range");
        self.top = Some(index);
    }

    /// The top module (first added if never set).
    pub fn top(&self) -> Option<&Module> {
        match self.top {
            Some(i) => self.modules.get(i),
            None => self.modules.first(),
        }
    }

    /// Mutable access to the top module.
    pub fn top_mut(&mut self) -> Option<&mut Module> {
        match self.top {
            Some(i) => self.modules.get_mut(i),
            None => self.modules.first_mut(),
        }
    }

    /// Consumes the design, returning the top module.
    pub fn into_top(mut self) -> Option<Module> {
        let idx = self.top.unwrap_or(0);
        if idx < self.modules.len() {
            Some(self.modules.swap_remove(idx))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_defaults_to_first() {
        let mut d = Design::new();
        d.add_module(Module::new("a"));
        d.add_module(Module::new("b"));
        assert_eq!(d.top().unwrap().name, "a");
        d.set_top(1);
        assert_eq!(d.top().unwrap().name, "b");
        assert_eq!(d.into_top().unwrap().name, "b");
    }
}
