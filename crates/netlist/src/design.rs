//! A design: a collection of modules.

use crate::module::Module;

/// A collection of [`Module`]s, as produced by the Verilog frontend.
///
/// The smaRTLy passes operate module-by-module; `Design` exists so a
/// multi-module source file round-trips. The *top* module is the first one
/// added unless overridden with [`Design::set_top`].
#[derive(Clone, Debug, Default)]
pub struct Design {
    modules: Vec<Module>,
    top: Option<usize>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module, returning its index.
    pub fn add_module(&mut self, module: Module) -> usize {
        self.modules.push(module);
        self.modules.len() - 1
    }

    /// All modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Mutable access to all modules.
    pub fn modules_mut(&mut self) -> &mut [Module] {
        &mut self.modules
    }

    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Mutable lookup by name.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// Marks the module at `index` as top.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_top(&mut self, index: usize) {
        assert!(index < self.modules.len(), "top index out of range");
        self.top = Some(index);
    }

    /// The top module (first added if never set).
    pub fn top(&self) -> Option<&Module> {
        match self.top {
            Some(i) => self.modules.get(i),
            None => self.modules.first(),
        }
    }

    /// Mutable access to the top module.
    pub fn top_mut(&mut self) -> Option<&mut Module> {
        match self.top {
            Some(i) => self.modules.get_mut(i),
            None => self.modules.first_mut(),
        }
    }

    /// Consumes the design, returning the top module.
    pub fn into_top(mut self) -> Option<Module> {
        let idx = self.top.unwrap_or(0);
        if idx < self.modules.len() {
            Some(self.modules.swap_remove(idx))
        } else {
            None
        }
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// `true` when the design holds no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The resolved index of the top module — exactly the module
    /// [`Design::top`] returns: the recorded index when it is in range,
    /// the first module when never set, `None` for an empty design or a
    /// stale out-of-range index.
    pub fn top_index(&self) -> Option<usize> {
        match self.top {
            Some(i) => (i < self.modules.len()).then_some(i),
            None => (!self.modules.is_empty()).then_some(0),
        }
    }

    /// Builds a design from a module list; the first module is top.
    pub fn from_modules(modules: Vec<Module>) -> Self {
        Design { modules, top: None }
    }

    /// Moves the modules out, leaving the design empty.
    ///
    /// The recorded top *index* is kept (queries on the emptied design
    /// return `None` in the interim), so a same-order
    /// [`Design::replace_modules`] restores the original top. The driver
    /// uses this pair to hand module ownership to worker threads.
    pub fn take_modules(&mut self) -> Vec<Module> {
        std::mem::take(&mut self.modules)
    }

    /// Consumes the design, returning all modules in insertion order.
    pub fn into_modules(self) -> Vec<Module> {
        self.modules
    }

    /// Replaces the module list wholesale, keeping a previously set top
    /// index when it still fits (it is cleared otherwise).
    pub fn replace_modules(&mut self, modules: Vec<Module>) {
        if self.top.is_some_and(|t| t >= modules.len()) {
            self.top = None;
        }
        self.modules = modules;
    }

    /// Iterates `(index, is_top, module)` in insertion order — "top-aware"
    /// iteration for drivers that must treat the root specially.
    pub fn iter_with_top(&self) -> impl Iterator<Item = (usize, bool, &Module)> {
        let top = self.top_index();
        self.modules
            .iter()
            .enumerate()
            .map(move |(i, m)| (i, Some(i) == top, m))
    }
}

impl IntoIterator for Design {
    type Item = Module;
    type IntoIter = std::vec::IntoIter<Module>;

    fn into_iter(self) -> Self::IntoIter {
        self.modules.into_iter()
    }
}

impl<'a> IntoIterator for &'a Design {
    type Item = &'a Module;
    type IntoIter = std::slice::Iter<'a, Module>;

    fn into_iter(self) -> Self::IntoIter {
        self.modules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_defaults_to_first() {
        let mut d = Design::new();
        d.add_module(Module::new("a"));
        d.add_module(Module::new("b"));
        assert_eq!(d.top().unwrap().name, "a");
        d.set_top(1);
        assert_eq!(d.top().unwrap().name, "b");
        assert_eq!(d.into_top().unwrap().name, "b");
    }

    #[test]
    fn take_and_replace_round_trip() {
        let mut d = Design::new();
        d.add_module(Module::new("a"));
        d.add_module(Module::new("b"));
        d.set_top(1);
        assert_eq!(d.top_index(), Some(1));

        let mods = d.take_modules();
        assert!(d.is_empty());
        assert_eq!(d.top_index(), None);
        assert!(d.top().is_none());
        assert_eq!(mods.len(), 2);

        d.replace_modules(mods);
        assert_eq!(d.len(), 2);
        // same-order replacement restores the recorded top
        assert_eq!(d.top().unwrap().name, "b");
    }

    #[test]
    fn replace_clears_out_of_range_top() {
        let mut d = Design::new();
        d.add_module(Module::new("a"));
        d.add_module(Module::new("b"));
        d.set_top(1);
        d.replace_modules(vec![Module::new("only")]);
        assert_eq!(d.top().unwrap().name, "only");
        assert_eq!(d.top_index(), Some(0));
    }

    #[test]
    fn top_aware_iteration() {
        let mut d = Design::new();
        d.add_module(Module::new("a"));
        d.add_module(Module::new("b"));
        d.set_top(1);
        let tops: Vec<(usize, bool)> = d
            .iter_with_top()
            .map(|(i, is_top, _)| (i, is_top))
            .collect();
        assert_eq!(tops, vec![(0, false), (1, true)]);
        let names: Vec<&str> = (&d).into_iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(d.into_modules().len(), 2);
    }
}
