//! Per-kind cell statistics.

use crate::module::Module;
use std::collections::BTreeMap;
use std::fmt;

/// Live-cell counts per [`crate::CellKind`], plus totals.
///
/// # Example
///
/// ```
/// use smartly_netlist::Module;
///
/// let mut m = Module::new("t");
/// let a = m.add_input("a", 4);
/// let b = m.add_input("b", 4);
/// let s = m.add_input("s", 1);
/// let y = m.mux(&a, &b, &s);
/// m.add_output("y", &y);
/// let stats = m.stats();
/// assert_eq!(stats.count("mux"), 1);
/// assert_eq!(stats.total(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellStats {
    counts: BTreeMap<&'static str, usize>,
}

impl CellStats {
    /// Computes statistics for `module`.
    pub fn of(module: &Module) -> Self {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (_, cell) in module.cells() {
            *counts.entry(cell.kind.name()).or_default() += 1;
        }
        CellStats { counts }
    }

    /// Count of cells whose kind name is `kind` (see [`crate::CellKind::name`]).
    pub fn count(&self, kind: &str) -> usize {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total live cells.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Count of `mux` plus `pmux` cells.
    pub fn mux_like(&self) -> usize {
        self.count("mux") + self.count("pmux")
    }

    /// Iterates over `(kind, count)` in kind-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

impl fmt::Display for CellStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counts {
            writeln!(f, "{k:>12}: {v}")?;
        }
        writeln!(f, "{:>12}: {}", "total", self.total())
    }
}
