//! Reference three-valued evaluation of cells.
//!
//! [`eval_cell`] defines the *semantics* of every [`CellKind`]: the
//! simulator, the AIG mapper and the SAT encoder are all tested against it.
//! `X` propagates pessimistically except where the output is decided by
//! known bits (e.g. `0 AND x = 0`, controlling-value shortcuts in `mux`).

use crate::bits::TriVal;
use crate::cell::CellKind;

/// Input values for [`eval_cell`], one vector per bound input port.
///
/// Unused ports stay empty. Bit 0 is the LSB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellInputs {
    /// Port `A`.
    pub a: Vec<TriVal>,
    /// Port `B`.
    pub b: Vec<TriVal>,
    /// Port `S`.
    pub s: Vec<TriVal>,
}

impl CellInputs {
    /// Inputs with only port `A` bound.
    pub fn unary(a: Vec<TriVal>) -> Self {
        CellInputs {
            a,
            ..Default::default()
        }
    }

    /// Inputs with ports `A` and `B` bound.
    pub fn binary(a: Vec<TriVal>, b: Vec<TriVal>) -> Self {
        CellInputs {
            a,
            b,
            ..Default::default()
        }
    }

    /// Inputs with ports `A`, `B` and `S` bound (mux-like cells).
    pub fn mux(a: Vec<TriVal>, b: Vec<TriVal>, s: Vec<TriVal>) -> Self {
        CellInputs { a, b, s }
    }
}

fn reduce_or(bits: &[TriVal]) -> TriVal {
    bits.iter().fold(TriVal::Zero, |acc, b| acc.or(*b))
}

fn reduce_and(bits: &[TriVal]) -> TriVal {
    bits.iter().fold(TriVal::One, |acc, b| acc.and(*b))
}

fn reduce_xor(bits: &[TriVal]) -> TriVal {
    bits.iter().fold(TriVal::Zero, |acc, b| acc.xor(*b))
}

fn full_adder(a: TriVal, b: TriVal, c: TriVal) -> (TriVal, TriVal) {
    let sum = a.xor(b).xor(c);
    let carry = a.and(b).or(a.and(c)).or(b.and(c));
    (sum, carry)
}

fn add_vec(a: &[TriVal], b: &[TriVal], carry_in: TriVal) -> Vec<TriVal> {
    let mut out = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for i in 0..a.len() {
        let (s, c) = full_adder(a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    out
}

fn to_u128(bits: &[TriVal]) -> Option<u128> {
    if bits.len() > 128 {
        return None;
    }
    let mut v = 0u128;
    for (i, b) in bits.iter().enumerate() {
        match b.to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}

/// Compares `a` and `b` as unsigned numbers; `None` when `X` obscures the
/// answer.
fn cmp_vec(a: &[TriVal], b: &[TriVal]) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match (a[i].to_bool(), b[i].to_bool()) {
            (Some(x), Some(y)) if x != y => {
                return Some(if x { Ordering::Greater } else { Ordering::Less })
            }
            (Some(_), Some(_)) => {}
            _ => return None,
        }
    }
    Some(Ordering::Equal)
}

fn eq_vec(a: &[TriVal], b: &[TriVal]) -> TriVal {
    let mut any_x = false;
    for (x, y) in a.iter().zip(b.iter()) {
        match (x.to_bool(), y.to_bool()) {
            (Some(p), Some(q)) if p != q => return TriVal::Zero,
            (Some(_), Some(_)) => {}
            _ => any_x = true,
        }
    }
    if any_x {
        TriVal::X
    } else {
        TriVal::One
    }
}

/// Evaluates one cell over three-valued inputs.
///
/// `y_width` is the width of the cell's output port. For `Dff` the result
/// is all-`X` (sequential state is the simulator's job, not the
/// combinational evaluator's).
///
/// # Panics
///
/// Panics if input widths are inconsistent with the cell kind's discipline
/// (use [`crate::Module::validate`] first).
pub fn eval_cell(kind: CellKind, inputs: &CellInputs, y_width: usize) -> Vec<TriVal> {
    use CellKind::*;
    let a = &inputs.a;
    let b = &inputs.b;
    let s = &inputs.s;
    match kind {
        Not => a.iter().map(|v| v.not()).collect(),
        And => a.iter().zip(b).map(|(x, y)| x.and(*y)).collect(),
        Or => a.iter().zip(b).map(|(x, y)| x.or(*y)).collect(),
        Xor => a.iter().zip(b).map(|(x, y)| x.xor(*y)).collect(),
        Xnor => a.iter().zip(b).map(|(x, y)| x.xor(*y).not()).collect(),
        ReduceAnd => vec![reduce_and(a)],
        ReduceOr | ReduceBool => vec![reduce_or(a)],
        ReduceXor => vec![reduce_xor(a)],
        LogicNot => vec![reduce_or(a).not()],
        LogicAnd => vec![reduce_or(a).and(reduce_or(b))],
        LogicOr => vec![reduce_or(a).or(reduce_or(b))],
        Add => add_vec(a, b, TriVal::Zero),
        Sub => {
            let nb: Vec<TriVal> = b.iter().map(|v| v.not()).collect();
            add_vec(a, &nb, TriVal::One)
        }
        Mul => match (to_u128(a), to_u128(b)) {
            (Some(x), Some(y)) if a.len() <= 64 => {
                let prod = x.wrapping_mul(y);
                (0..y_width)
                    .map(|i| TriVal::from_bool((prod >> i) & 1 == 1))
                    .collect()
            }
            _ => vec![TriVal::X; y_width],
        },
        Shl | Shr => match to_u128(b) {
            Some(amt) => {
                let amt = amt.min(a.len() as u128) as usize;
                let mut out = vec![TriVal::Zero; a.len()];
                for (i, slot) in out.iter_mut().enumerate() {
                    let src = if kind == Shl {
                        i.checked_sub(amt)
                    } else {
                        let j = i + amt;
                        (j < a.len()).then_some(j)
                    };
                    if let Some(j) = src {
                        *slot = a[j];
                    }
                }
                out
            }
            None => vec![TriVal::X; y_width],
        },
        Eq => vec![eq_vec(a, b)],
        Ne => vec![eq_vec(a, b).not()],
        Lt | Le | Gt | Ge => {
            use std::cmp::Ordering;
            let v = match cmp_vec(a, b) {
                None => TriVal::X,
                Some(ord) => TriVal::from_bool(match kind {
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
            };
            vec![v]
        }
        Mux => {
            debug_assert_eq!(s.len(), 1);
            match s[0].to_bool() {
                Some(true) => b.clone(),
                Some(false) => a.clone(),
                None => a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        if x == y && x.is_known() {
                            *x
                        } else {
                            TriVal::X
                        }
                    })
                    .collect(),
            }
        }
        Pmux => {
            let w = y_width;
            let n = s.len();
            debug_assert_eq!(b.len(), w * n);
            // priority scan from bit 0
            for (i, sel) in s.iter().enumerate() {
                match sel.to_bool() {
                    Some(true) => return b[i * w..(i + 1) * w].to_vec(),
                    Some(false) => {}
                    None => return vec![TriVal::X; w],
                }
            }
            a.clone()
        }
        Dff => vec![TriVal::X; y_width],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TriVal::{One, Zero, X};

    fn bits(v: u64, w: usize) -> Vec<TriVal> {
        (0..w)
            .map(|i| TriVal::from_bool((v >> i) & 1 == 1))
            .collect()
    }

    fn val(bits: &[TriVal]) -> Option<u64> {
        to_u128(bits).map(|v| v as u64)
    }

    #[test]
    fn add_sub_match_integers() {
        for (x, y) in [(0u64, 0u64), (3, 5), (255, 1), (200, 100), (77, 200)] {
            let a = bits(x, 8);
            let b = bits(y, 8);
            let sum = eval_cell(CellKind::Add, &CellInputs::binary(a.clone(), b.clone()), 8);
            assert_eq!(val(&sum), Some((x + y) & 0xff));
            let diff = eval_cell(CellKind::Sub, &CellInputs::binary(a, b), 8);
            assert_eq!(val(&diff), Some(x.wrapping_sub(y) & 0xff));
        }
    }

    #[test]
    fn compares_match_integers() {
        for (x, y) in [(0u64, 0u64), (3, 5), (5, 3), (255, 255)] {
            let a = bits(x, 8);
            let b = bits(y, 8);
            let lt = eval_cell(CellKind::Lt, &CellInputs::binary(a.clone(), b.clone()), 1);
            assert_eq!(lt[0], TriVal::from_bool(x < y));
            let ge = eval_cell(CellKind::Ge, &CellInputs::binary(a.clone(), b.clone()), 1);
            assert_eq!(ge[0], TriVal::from_bool(x >= y));
            let eq = eval_cell(CellKind::Eq, &CellInputs::binary(a, b), 1);
            assert_eq!(eq[0], TriVal::from_bool(x == y));
        }
    }

    #[test]
    fn eq_with_x_decides_on_known_mismatch() {
        // 1x vs 10 : bit0 differs (1 vs 0)? bit0: X vs 0 -> unknown; bit1: 1 vs 1 equal
        let a = vec![X, One];
        let b = vec![Zero, One];
        assert_eq!(eq_vec(&a, &b), X);
        // known mismatch dominates X elsewhere
        let a = vec![X, One];
        let b = vec![Zero, Zero];
        assert_eq!(eq_vec(&a, &b), Zero);
    }

    #[test]
    fn mux_controlling_shortcuts() {
        let a = bits(0b1010, 4);
        let b = bits(0b0110, 4);
        let pick_b = eval_cell(
            CellKind::Mux,
            &CellInputs::mux(a.clone(), b.clone(), vec![One]),
            4,
        );
        assert_eq!(val(&pick_b), Some(0b0110));
        let pick_a = eval_cell(
            CellKind::Mux,
            &CellInputs::mux(a.clone(), b.clone(), vec![Zero]),
            4,
        );
        assert_eq!(val(&pick_a), Some(0b1010));
        // X select: agreeing bits survive
        let y = eval_cell(CellKind::Mux, &CellInputs::mux(a, b, vec![X]), 4);
        assert_eq!(y, vec![Zero, One, X, X]);
    }

    #[test]
    fn pmux_priority() {
        let a = bits(0xF, 4);
        let w0 = bits(1, 4);
        let w1 = bits(2, 4);
        let mut b = w0.clone();
        b.extend(w1.clone());
        // both selects set: lowest wins
        let y = eval_cell(
            CellKind::Pmux,
            &CellInputs::mux(a.clone(), b.clone(), vec![One, One]),
            4,
        );
        assert_eq!(val(&y), Some(1));
        // only high select
        let y = eval_cell(
            CellKind::Pmux,
            &CellInputs::mux(a.clone(), b.clone(), vec![Zero, One]),
            4,
        );
        assert_eq!(val(&y), Some(2));
        // none: default
        let y = eval_cell(CellKind::Pmux, &CellInputs::mux(a, b, vec![Zero, Zero]), 4);
        assert_eq!(val(&y), Some(0xF));
    }

    #[test]
    fn shifts() {
        let a = bits(0b1011, 4);
        let y = eval_cell(CellKind::Shl, &CellInputs::binary(a.clone(), bits(1, 2)), 4);
        assert_eq!(val(&y), Some(0b0110));
        let y = eval_cell(CellKind::Shr, &CellInputs::binary(a.clone(), bits(2, 2)), 4);
        assert_eq!(val(&y), Some(0b10));
        // over-shift zeroes out
        let y = eval_cell(CellKind::Shr, &CellInputs::binary(a, bits(4, 3)), 4);
        assert_eq!(val(&y), Some(0));
    }

    #[test]
    fn zero_dominates_x_in_and() {
        let y = eval_cell(
            CellKind::And,
            &CellInputs::binary(vec![Zero, One], vec![X, X]),
            2,
        );
        assert_eq!(y, vec![Zero, X]);
    }

    #[test]
    fn logic_ops() {
        let y = eval_cell(
            CellKind::LogicAnd,
            &CellInputs::binary(bits(2, 2), bits(1, 2)),
            1,
        );
        assert_eq!(y, vec![One]);
        let y = eval_cell(CellKind::LogicNot, &CellInputs::unary(bits(0, 3)), 1);
        assert_eq!(y, vec![One]);
        let y = eval_cell(
            CellKind::LogicOr,
            &CellInputs::binary(bits(0, 2), bits(0, 2)),
            1,
        );
        assert_eq!(y, vec![Zero]);
    }
}
