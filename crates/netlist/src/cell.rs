//! Word-level cells and their port discipline.

use crate::bits::SigSpec;
use std::fmt;

/// A cell port name.
///
/// The IR uses a fixed, Yosys-like port vocabulary; which ports a cell
/// binds is dictated by its [`CellKind`] (see [`CellKind::ports`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// First data input.
    A,
    /// Second data input (or the stacked words of a `pmux`).
    B,
    /// Select input (`mux`/`pmux`).
    S,
    /// Primary output.
    Y,
    /// Clock input (`dff`).
    Clk,
    /// Data input (`dff`).
    D,
    /// Registered output (`dff`).
    Q,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::A => "A",
            Port::B => "B",
            Port::S => "S",
            Port::Y => "Y",
            Port::Clk => "CLK",
            Port::D => "D",
            Port::Q => "Q",
        };
        write!(f, "{s}")
    }
}

/// The operation a [`Cell`] performs.
///
/// Width discipline (checked by [`crate::Module::validate`]):
///
/// | kind | ports | widths |
/// |------|-------|--------|
/// | `Not` | A → Y | `w(A) == w(Y)` |
/// | `And`/`Or`/`Xor`/`Xnor` | A,B → Y | all equal |
/// | `ReduceAnd`/`ReduceOr`/`ReduceXor`/`ReduceBool` | A → Y | `w(Y) == 1` |
/// | `LogicNot` | A → Y | `w(Y) == 1` |
/// | `LogicAnd`/`LogicOr` | A,B → Y | `w(Y) == 1` |
/// | `Add`/`Sub`/`Mul` | A,B → Y | all equal (results truncate) |
/// | `Shl`/`Shr` | A,B → Y | `w(A) == w(Y)`, any `w(B)` |
/// | `Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge` | A,B → Y | `w(A) == w(B)`, `w(Y) == 1` (unsigned) |
/// | `Mux` | A,B,S → Y | `w(A) == w(B) == w(Y)`, `w(S) == 1`; `Y = S ? B : A` |
/// | `Pmux` | A,B,S → Y | `w(B) == w(A) * w(S)`; lowest set `S` bit wins, `S == 0 → A` |
/// | `Dff` | Clk,D → Q | `w(D) == w(Q)`, `w(Clk) == 1` |
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Bitwise NOT.
    Not,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise XNOR.
    Xnor,
    /// AND-reduction of all bits of `A`.
    ReduceAnd,
    /// OR-reduction of all bits of `A`.
    ReduceOr,
    /// XOR-reduction (parity) of all bits of `A`.
    ReduceXor,
    /// Boolean coercion: `Y = (A != 0)`.
    ReduceBool,
    /// Logical NOT: `Y = (A == 0)`.
    LogicNot,
    /// Logical AND: `Y = (A != 0) && (B != 0)`.
    LogicAnd,
    /// Logical OR: `Y = (A != 0) || (B != 0)`.
    LogicOr,
    /// Unsigned addition, truncated to the output width.
    Add,
    /// Unsigned (wrapping) subtraction.
    Sub,
    /// Unsigned multiplication, truncated.
    Mul,
    /// Logical shift left by the unsigned value of `B`.
    Shl,
    /// Logical shift right by the unsigned value of `B`.
    Shr,
    /// Equality compare.
    Eq,
    /// Inequality compare.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// 2-to-1 word multiplexer: `Y = S ? B : A`.
    Mux,
    /// Parallel (priority) multiplexer with default.
    Pmux,
    /// Positive-edge D flip-flop.
    Dff,
}

impl CellKind {
    /// Every cell kind, in discriminant order. Consumers that fingerprint
    /// the kind encoding (the persistent knowledge store) iterate this
    /// list, so extending the enum automatically invalidates stale
    /// on-disk state.
    pub const ALL: [CellKind; 26] = {
        use CellKind::*;
        [
            Not, And, Or, Xor, Xnor, ReduceAnd, ReduceOr, ReduceXor, ReduceBool, LogicNot,
            LogicAnd, LogicOr, Add, Sub, Mul, Shl, Shr, Eq, Ne, Lt, Le, Gt, Ge, Mux, Pmux, Dff,
        ]
    };

    /// The ports this kind binds, inputs first, outputs last.
    pub fn ports(self) -> &'static [Port] {
        use CellKind::*;
        match self {
            Not | ReduceAnd | ReduceOr | ReduceXor | ReduceBool | LogicNot => &[Port::A, Port::Y],
            And | Or | Xor | Xnor | LogicAnd | LogicOr | Add | Sub | Mul | Shl | Shr | Eq | Ne
            | Lt | Le | Gt | Ge => &[Port::A, Port::B, Port::Y],
            Mux | Pmux => &[Port::A, Port::B, Port::S, Port::Y],
            Dff => &[Port::Clk, Port::D, Port::Q],
        }
    }

    /// The input ports of this kind.
    pub fn input_ports(self) -> &'static [Port] {
        let ports = self.ports();
        &ports[..ports.len() - 1]
    }

    /// The single output port of this kind (`Y`, or `Q` for `Dff`).
    pub fn output_port(self) -> Port {
        match self {
            CellKind::Dff => Port::Q,
            _ => Port::Y,
        }
    }

    /// Whether the cell is sequential (breaks combinational paths).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// A stable lowercase name, used in stats and debug output.
    pub fn name(self) -> &'static str {
        use CellKind::*;
        match self {
            Not => "not",
            And => "and",
            Or => "or",
            Xor => "xor",
            Xnor => "xnor",
            ReduceAnd => "reduce_and",
            ReduceOr => "reduce_or",
            ReduceXor => "reduce_xor",
            ReduceBool => "reduce_bool",
            LogicNot => "logic_not",
            LogicAnd => "logic_and",
            LogicOr => "logic_or",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Shl => "shl",
            Shr => "shr",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Mux => "mux",
            Pmux => "pmux",
            Dff => "dff",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A cell instance: a [`CellKind`] plus its port bindings.
///
/// Construct cells through the builder methods on [`crate::Module`] (for
/// example [`crate::Module::mux`]) rather than by hand; the builders create
/// correctly-sized output wires and keep the module consistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// The operation.
    pub kind: CellKind,
    /// A human-readable instance name (not required to be unique).
    pub name: String,
    conns: Vec<(Port, SigSpec)>,
}

impl Cell {
    /// Creates a cell with no port bindings.
    pub fn new(kind: CellKind, name: impl Into<String>) -> Self {
        Cell {
            kind,
            name: name.into(),
            conns: Vec::new(),
        }
    }

    /// Binds `port` to `spec`, replacing any previous binding.
    pub fn set_port(&mut self, port: Port, spec: SigSpec) {
        if let Some(slot) = self.conns.iter_mut().find(|(p, _)| *p == port) {
            slot.1 = spec;
        } else {
            self.conns.push((port, spec));
        }
    }

    /// The spec bound to `port`, if any.
    pub fn port(&self, port: Port) -> Option<&SigSpec> {
        self.conns.iter().find(|(p, _)| *p == port).map(|(_, s)| s)
    }

    /// Mutable access to the spec bound to `port`.
    pub fn port_mut(&mut self, port: Port) -> Option<&mut SigSpec> {
        self.conns
            .iter_mut()
            .find(|(p, _)| *p == port)
            .map(|(_, s)| s)
    }

    /// All `(port, spec)` bindings in insertion order.
    pub fn connections(&self) -> &[(Port, SigSpec)] {
        &self.conns
    }

    /// Mutable iteration over all bindings.
    pub fn connections_mut(&mut self) -> impl Iterator<Item = (Port, &mut SigSpec)> {
        self.conns.iter_mut().map(|(p, s)| (*p, s))
    }

    /// The output spec (`Y`, or `Q` for `dff`).
    ///
    /// # Panics
    ///
    /// Panics if the output port is unbound (cells built via the
    /// [`crate::Module`] builders always bind it).
    pub fn output(&self) -> &SigSpec {
        self.port(self.kind.output_port())
            .expect("cell output port must be bound")
    }

    /// The input bindings, in the order defined by the kind.
    pub fn inputs(&self) -> impl Iterator<Item = (Port, &SigSpec)> {
        self.kind
            .input_ports()
            .iter()
            .filter_map(move |p| self.port(*p).map(|s| (*p, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::SigSpec;

    #[test]
    fn ports_by_kind() {
        assert_eq!(CellKind::Mux.ports(), &[Port::A, Port::B, Port::S, Port::Y]);
        assert_eq!(CellKind::Dff.output_port(), Port::Q);
        assert_eq!(CellKind::Not.input_ports(), &[Port::A]);
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Mux.is_sequential());
    }

    #[test]
    fn set_port_replaces() {
        let mut c = Cell::new(CellKind::And, "g");
        c.set_port(Port::A, SigSpec::zeros(4));
        c.set_port(Port::A, SigSpec::ones(4));
        assert_eq!(c.port(Port::A), Some(&SigSpec::ones(4)));
        assert_eq!(c.connections().len(), 1);
    }

    /// Compile-time enforcement that `CellKind::ALL` stays complete: the
    /// exhaustive match below fails to build when a variant is added, and
    /// whoever fixes it must extend `ALL` — which in turn rotates the
    /// persistent knowledge store's encoding fingerprint, invalidating
    /// stale on-disk verdicts keyed under the old discriminants.
    #[test]
    fn all_is_exhaustive_and_in_discriminant_order() {
        // one arm per variant: extending the enum breaks this match
        let covered = |k: CellKind| -> u64 {
            use CellKind::*;
            match k {
                Not | And | Or | Xor | Xnor | ReduceAnd | ReduceOr | ReduceXor | ReduceBool
                | LogicNot | LogicAnd | LogicOr | Add | Sub | Mul | Shl | Shr | Eq | Ne | Lt
                | Le | Gt | Ge | Mux | Pmux | Dff => k as u64,
            }
        };
        for (i, kind) in CellKind::ALL.into_iter().enumerate() {
            assert_eq!(covered(kind), i as u64, "{kind} out of order in ALL");
        }
    }
}
