//! Typed errors for netlist construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::Module::validate`], [`crate::Module::topo_order`]
/// and other structural checks.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell violates the width discipline of its kind.
    WidthMismatch {
        /// Module name.
        module: String,
        /// Offending cell name.
        cell: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A wire bit has more than one driver.
    MultipleDrivers {
        /// Module name.
        module: String,
        /// Debug rendering of the bit.
        bit: String,
        /// Where the second driver was found.
        context: String,
    },
    /// Something tried to drive a constant bit.
    ConstDriven {
        /// Module name.
        module: String,
        /// Where the bad connection was found.
        context: String,
    },
    /// The combinational part of the module contains a cycle.
    CombinationalCycle {
        /// Module name.
        module: String,
    },
    /// A named object was not found.
    NotFound {
        /// Module name.
        module: String,
        /// What was looked up.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::WidthMismatch {
                module,
                cell,
                detail,
            } => write!(f, "width mismatch in {module}/{cell}: {detail}"),
            NetlistError::MultipleDrivers {
                module,
                bit,
                context,
            } => write!(f, "multiple drivers for {bit} in {module} ({context})"),
            NetlistError::ConstDriven { module, context } => {
                write!(f, "constant bit driven in {module} ({context})")
            }
            NetlistError::CombinationalCycle { module } => {
                write!(f, "combinational cycle in {module}")
            }
            NetlistError::NotFound { module, name } => {
                write!(f, "object {name} not found in {module}")
            }
        }
    }
}

impl Error for NetlistError {}
