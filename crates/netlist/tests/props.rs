//! Randomized tests for the IR: `SigSpec` algebra and `eval_cell` laws.
//!
//! Formerly written with `proptest`; the offline build environment cannot
//! fetch it, so each property now runs as a seeded loop over the vendored
//! deterministic RNG — same laws, reproducible cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartly_netlist::{eval_cell, CellInputs, CellKind, SigSpec, TriVal};

const CASES: usize = 64;

fn trivals(bits: u64, mask_x: u64, w: usize) -> Vec<TriVal> {
    (0..w)
        .map(|i| {
            if (mask_x >> i) & 1 == 1 {
                TriVal::X
            } else {
                TriVal::from_bool((bits >> i) & 1 == 1)
            }
        })
        .collect()
}

#[test]
fn const_u64_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7401);
    for _ in 0..CASES {
        let v = rng.gen_range(0..=u64::MAX);
        let w = rng.gen_range(1u32..=64);
        let spec = SigSpec::const_u64(v & mask(w), w);
        assert_eq!(spec.as_const_u64(), Some(v & mask(w)));
        assert_eq!(spec.width(), w as usize);
    }
}

#[test]
fn slice_then_concat_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7402);
    for _ in 0..CASES {
        let v = rng.gen_range(0..=u64::MAX);
        let w = rng.gen_range(2u32..=32);
        let cut = rng.gen_range(1u32..31).min(w - 1);
        let spec = SigSpec::const_u64(v & mask(w), w);
        let mut lo = spec.slice(0, cut as usize);
        let hi = spec.slice(cut as usize, (w - cut) as usize);
        lo.concat(&hi);
        assert_eq!(lo, spec);
    }
}

#[test]
fn zext_preserves_value() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7403);
    for _ in 0..CASES {
        let v = rng.gen_range(0..=u64::MAX);
        let w = rng.gen_range(1u32..=32);
        let extra = rng.gen_range(0u32..16);
        let spec = SigSpec::const_u64(v & mask(w), w);
        assert_eq!(spec.zext(w + extra).as_const_u64(), Some(v & mask(w)));
    }
}

/// AND/OR/XOR are commutative even with X bits.
#[test]
fn bitwise_ops_commute() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7404);
    for _ in 0..CASES {
        let (a, b) = (rng.gen_range(0..=u64::MAX), rng.gen_range(0..=u64::MAX));
        let (xa, xb) = (rng.gen_range(0..=u64::MAX), rng.gen_range(0..=u64::MAX));
        let w = 16usize;
        let va = trivals(a, xa, w);
        let vb = trivals(b, xb, w);
        for kind in [CellKind::And, CellKind::Or, CellKind::Xor, CellKind::Xnor] {
            let ab = eval_cell(kind, &CellInputs::binary(va.clone(), vb.clone()), w);
            let ba = eval_cell(kind, &CellInputs::binary(vb.clone(), va.clone()), w);
            assert_eq!(&ab, &ba, "{kind:?}");
        }
    }
}

/// De Morgan over three-valued vectors: !(a & b) == !a | !b.
#[test]
fn de_morgan() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7405);
    for _ in 0..CASES {
        let (a, b, xa) = (
            rng.gen_range(0..=u64::MAX),
            rng.gen_range(0..=u64::MAX),
            rng.gen_range(0..=u64::MAX),
        );
        let w = 12usize;
        let va = trivals(a, xa, w);
        let vb = trivals(b, 0, w);
        let and = eval_cell(
            CellKind::And,
            &CellInputs::binary(va.clone(), vb.clone()),
            w,
        );
        let not_and = eval_cell(CellKind::Not, &CellInputs::unary(and), w);
        let na = eval_cell(CellKind::Not, &CellInputs::unary(va), w);
        let nb = eval_cell(CellKind::Not, &CellInputs::unary(vb), w);
        let or = eval_cell(CellKind::Or, &CellInputs::binary(na, nb), w);
        assert_eq!(not_and, or);
    }
}

/// Add/Sub agree with wrapping integer arithmetic on known values.
#[test]
fn arith_matches_integers() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7406);
    for _ in 0..CASES {
        let (a, b) = (rng.gen_range(0..=u64::MAX), rng.gen_range(0..=u64::MAX));
        let w = rng.gen_range(1u32..=32);
        let m = mask(w);
        let va = trivals(a & m, 0, w as usize);
        let vb = trivals(b & m, 0, w as usize);
        let sum = eval_cell(
            CellKind::Add,
            &CellInputs::binary(va.clone(), vb.clone()),
            w as usize,
        );
        assert_eq!(to_u64(&sum), Some((a & m).wrapping_add(b & m) & m));
        let diff = eval_cell(CellKind::Sub, &CellInputs::binary(va, vb), w as usize);
        assert_eq!(to_u64(&diff), Some((a & m).wrapping_sub(b & m) & m));
    }
}

/// Comparison trichotomy on known values.
#[test]
fn compare_trichotomy() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7407);
    for _ in 0..CASES {
        let (a, b) = (rng.gen_range(0..=u32::MAX), rng.gen_range(0..=u32::MAX));
        let w = 32usize;
        let va = trivals(a as u64, 0, w);
        let vb = trivals(b as u64, 0, w);
        let lt = eval_cell(CellKind::Lt, &CellInputs::binary(va.clone(), vb.clone()), 1)[0];
        let eq = eval_cell(CellKind::Eq, &CellInputs::binary(va.clone(), vb.clone()), 1)[0];
        let gt = eval_cell(CellKind::Gt, &CellInputs::binary(va, vb), 1)[0];
        let count = [lt, eq, gt].iter().filter(|v| **v == TriVal::One).count();
        assert_eq!(count, 1, "exactly one of <,==,> holds");
    }
}

/// Mux with a known select equals the selected branch exactly.
#[test]
fn mux_selects_branch() {
    let mut rng = StdRng::seed_from_u64(0x6e65_746c_6973_7408);
    for _ in 0..CASES {
        let (a, b, xa) = (
            rng.gen_range(0..=u64::MAX),
            rng.gen_range(0..=u64::MAX),
            rng.gen_range(0..=u64::MAX),
        );
        let s = rng.gen_bool(0.5);
        let w = 8usize;
        let va = trivals(a, xa, w);
        let vb = trivals(b, 0, w);
        let y = eval_cell(
            CellKind::Mux,
            &CellInputs::mux(va.clone(), vb.clone(), vec![TriVal::from_bool(s)]),
            w,
        );
        assert_eq!(y, if s { vb } else { va });
    }
}

/// X never appears where a controlling value decides the output.
#[test]
fn controlling_values_beat_x() {
    let w = 8usize;
    let zeros = trivals(0, 0, w);
    let xs = trivals(0, u64::MAX, w);
    let y = eval_cell(
        CellKind::And,
        &CellInputs::binary(zeros.clone(), xs.clone()),
        w,
    );
    assert_eq!(y, zeros);
    let ones = trivals(u64::MAX, 0, w);
    let y = eval_cell(CellKind::Or, &CellInputs::binary(ones.clone(), xs), w);
    assert_eq!(y, ones);
}

fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

fn to_u64(bits: &[TriVal]) -> Option<u64> {
    let mut v = 0u64;
    for (i, b) in bits.iter().enumerate() {
        match b.to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}
