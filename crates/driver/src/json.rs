//! A minimal, dependency-free JSON value tree with deterministic
//! rendering.
//!
//! The workspace builds offline, so `serde_json` is unavailable; the
//! driver's machine-readable reports only need *writing*, and only for a
//! fixed schema, so a tiny value enum with insertion-ordered objects is
//! enough. Rendering is deterministic: object keys keep the order they
//! were inserted in, and floats are formatted with a fixed precision.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order, which makes rendered
/// output byte-stable — the property the driver's determinism tests rely
/// on.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the reports never need negatives).
    UInt(u64),
    /// Floating point, rendered with 6 decimal digits.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Insertion-ordered object.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object under construction.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts `key: value` (panics when `self` is not an object — a
    /// driver-internal schema bug, not a runtime condition).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Object(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with `indent`-space pretty-printing.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", " ".repeat(n * depth), " ".repeat(n * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => write!(out, "{v}").expect("write"),
            Json::Float(v) => {
                if v.is_finite() {
                    write!(out, "{v:.6}").expect("write");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_deterministically_in_insertion_order() {
        let mut obj = Json::object();
        obj.set("zeta", Json::UInt(1));
        obj.set("alpha", Json::Array(vec![Json::Bool(true), Json::Null]));
        obj.set("s", Json::Str("a\"b\n".into()));
        assert_eq!(
            obj.render(),
            r#"{"zeta":1,"alpha":[true,null],"s":"a\"b\n"}"#
        );
        assert_eq!(obj.render(), obj.clone().render());
    }

    #[test]
    fn pretty_print_shape() {
        let mut obj = Json::object();
        obj.set("a", Json::UInt(2));
        assert_eq!(obj.render_pretty(2), "{\n  \"a\": 2\n}\n");
    }
}
