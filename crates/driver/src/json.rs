//! A minimal, dependency-free JSON value tree with deterministic
//! rendering and a small recursive-descent parser.
//!
//! The workspace builds offline, so `serde_json` is unavailable; the
//! driver's machine-readable reports need *writing* for a fixed schema,
//! so a tiny value enum with insertion-ordered objects is enough.
//! Rendering is deterministic: object keys keep the order they were
//! inserted in, and floats are formatted with a fixed precision.
//! [`Json::parse`] exists for the tools that read the driver's own
//! artifacts back (`smartly trace`), not as a general-purpose JSON
//! implementation.
//!
//! Edge cases are defined, not accidental: non-finite floats (NaN, ±inf)
//! render as `null` (never as the invalid bare tokens `NaN`/`inf`), and
//! every control character below U+0020 in a string is escaped (`\n`,
//! `\r`, `\t` short forms; `\u00XX` otherwise).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order, which makes rendered
/// output byte-stable — the property the driver's determinism tests rely
/// on.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the reports never need negatives).
    UInt(u64),
    /// Floating point, rendered with 6 decimal digits.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Insertion-ordered object.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object under construction.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts `key: value` (panics when `self` is not an object — a
    /// driver-internal schema bug, not a runtime condition).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Object(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Member lookup on an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer (`UInt` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (`Float`, or `UInt` widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the driver's own artifacts: traces and
    /// reports). Non-negative integers without fraction or exponent
    /// parse as [`Json::UInt`]; every other number parses as
    /// [`Json::Float`]. Trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with `indent`-space pretty-printing.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", " ".repeat(n * depth), " ".repeat(n * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => write!(out, "{v}").expect("write"),
            Json::Float(v) => {
                if v.is_finite() {
                    write!(out, "{v:.6}").expect("write");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursion guard for the parser; driver artifacts are a few levels
/// deep, so a small fixed bound keeps hostile inputs from blowing the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any run without structural bytes
            // is already valid UTF-8.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => Err(format!("invalid number at byte {start}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_deterministically_in_insertion_order() {
        let mut obj = Json::object();
        obj.set("zeta", Json::UInt(1));
        obj.set("alpha", Json::Array(vec![Json::Bool(true), Json::Null]));
        obj.set("s", Json::Str("a\"b\n".into()));
        assert_eq!(
            obj.render(),
            r#"{"zeta":1,"alpha":[true,null],"s":"a\"b\n"}"#
        );
        assert_eq!(obj.render(), obj.clone().render());
    }

    #[test]
    fn pretty_print_shape() {
        let mut obj = Json::object();
        obj.set("a", Json::UInt(2));
        assert_eq!(obj.render_pretty(2), "{\n  \"a\": 2\n}\n");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).render(), "null");
        assert_eq!(Json::Float(1.5).render(), "1.500000");
    }

    #[test]
    fn control_characters_are_escaped() {
        let s = Json::Str("a\u{1}b\u{1f}\u{7}".into());
        assert_eq!(s.render(), r#""a\u0001b\u001f\u0007""#);
        // Round-trips through the parser.
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e1").unwrap(), Json::Float(25.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v, Json::Str("a\n\t\"\\Aé".into()));
        // Surrogate pair (U+1F600).
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let text = r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        // Parse(render(v)) is the identity on the value tree.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty(2)).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "\"\u{1}\"",
            "[1]]",
            "nan",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse(r#"{"n": 7, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::UInt(1).get("k"), None);
    }
}
