//! Design-level driver: the engine that turns the per-module smaRTLy
//! passes into a whole-design optimizer.
//!
//! The core crates optimize one [`smartly_netlist::Module`] at a time;
//! real RTL arrives as multi-module designs. This crate adds the missing
//! orchestration layer:
//!
//! * [`optimize_design`] — runs the [`smartly_core::Pipeline`] over every
//!   module of a [`smartly_netlist::Design`] on a pool of scoped worker
//!   threads (a shared atomic cursor over a heaviest-first work list, so
//!   idle workers steal the next pending module);
//! * a **structural memo cache** — modules with identical bodies (common
//!   in generated and industrial RTL) are optimized once and the result
//!   is cloned for every duplicate ([`structural_key`]);
//! * a **design-level knowledge base** ([`knowledge`]) — a thread-safe
//!   counterexample bank shared by every module sweep, so memo-cache
//!   *near-miss* modules (same cone shapes, different nets) seed each
//!   other's SAT-replay vectors instead of starting cold;
//! * **guards** — [`DriverOptions::max_cells`] skips oversized modules,
//!   [`DriverOptions::timeout`] arms a cooperative deadline that
//!   interrupts a module mid-SAT-search and reverts it to its original
//!   netlist;
//! * **panic isolation** — each module's optimization runs under
//!   `catch_unwind`; a panicking pass poisons that one module (original
//!   netlist restored, panic message and backtrace in the report) while
//!   the rest of the design keeps optimizing;
//! * **crash-safe persistence** ([`persist`]) — knowledge saves are
//!   write-verify-rename with bounded retry, fsync of both the file and
//!   its parent directory, so a crash mid-save never corrupts an
//!   existing knowledge file;
//! * a **deterministic fault-injection harness** (`smartly-failpoint`) —
//!   named fail-point sites across the save path and the module pool,
//!   armed via `SMARTLY_FAILPOINTS` or in-process, drive the chaos
//!   suite that pins the degradation ladder;
//! * a deterministic [`DesignReport`] — per-module
//!   [`smartly_core::PipelineReport`]s aggregated in stable module order;
//!   [`DesignReport::digest`] is byte-identical across `jobs` settings;
//! * [`emit_design`] — post-optimization Verilog for the whole design;
//! * [`run_public_corpus`] — the benchmark harness behind
//!   `smartly corpus` and the `BENCH_driver.json` artifact;
//! * **observability** ([`trace`]) — opt-in hierarchical span traces
//!   (module → round → pass → query → SAT call) exported as Chrome
//!   trace-event JSON, plus always-on latency histograms in the timing
//!   report. Purely observational: `--digest` output is byte-identical
//!   with tracing on or off.
//!
//! # Example
//!
//! ```
//! use smartly_driver::{optimize_design, DriverOptions};
//!
//! let src = r#"
//! module leaf (input wire s, input wire [3:0] a, input wire [3:0] b,
//!              output reg [3:0] y);
//!   always @(*) begin
//!     if (s) begin if (s) y = a; else y = b; end else y = b;
//!   end
//! endmodule
//! module leaf_copy (input wire s, input wire [3:0] a, input wire [3:0] b,
//!                   output reg [3:0] y);
//!   always @(*) begin
//!     if (s) begin if (s) y = a; else y = b; end else y = b;
//!   end
//! endmodule
//! "#;
//! let mut design = smartly_verilog::compile(src)?;
//! let opts = DriverOptions { verify: true, ..Default::default() };
//! let report = optimize_design(&mut design, &opts)?;
//! assert_eq!(report.modules.len(), 2);
//! assert_eq!(report.memo_hits(), 1); // leaf_copy cloned from leaf
//! assert_eq!(report.all_equivalent(), Some(true));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod curve;
mod engine;
pub mod job;
pub mod json;
pub mod knowledge;
mod panic_guard;
pub mod persist;
mod report;
pub mod trace;

pub use corpus::{
    run_public_corpus, scale_from_str, CorpusOptions, CorpusReport, CorpusRow, KnowledgeBench,
    LevelResult, SolverBench,
};
pub use curve::{jobs_ladder, run_scaling_curve, CurveOptions, CurvePoint, CurveReport};
pub use engine::{
    level_from_str, optimize_design, structural_key, DriverOptions, FP_MODULE_DEADLINE,
    FP_MODULE_PANIC,
};
pub use job::{optimize_source, JobOutput};
pub use knowledge::{DesignVerdictStore, KnowledgeBase, KnowledgeStats, VerdictStoreStats};
pub use persist::{
    load_state, save_state, KbReport, KnowledgeState, SaveReport, StoreKey, FP_SAVE_BACKOFF,
    FP_SAVE_IO, FP_SAVE_RELOAD, FP_SAVE_RENAME, FP_SAVE_VERIFY,
};
pub use report::{DesignReport, ModuleOutcome, ModuleReport, Verbosity};
pub use trace::{chrome_trace_json, LayerAgg, SpanAgg, TraceSummary};

use smartly_netlist::{Design, NetlistError};
use smartly_verilog::{emit_verilog, VerilogError};

/// Everything the driver can fail with.
#[derive(Debug)]
pub enum DriverError {
    /// A netlist-level failure inside the pipeline.
    Netlist(NetlistError),
    /// A frontend failure while compiling source.
    Verilog(VerilogError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Netlist(e) => write!(f, "netlist error: {e}"),
            DriverError::Verilog(e) => write!(f, "verilog error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<NetlistError> for DriverError {
    fn from(e: NetlistError) -> Self {
        DriverError::Netlist(e)
    }
}

impl From<VerilogError> for DriverError {
    fn from(e: VerilogError) -> Self {
        DriverError::Verilog(e)
    }
}

/// Renders every module of `design` back to structural Verilog, in module
/// order, separated by blank lines.
pub fn emit_design(design: &Design) -> String {
    let mut out = String::new();
    for (i, module) in design.modules().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&emit_verilog(module));
    }
    out
}
