//! The design-level optimization engine: a work-stealing pool of scoped
//! threads running the per-module [`Pipeline`] over every module of a
//! [`Design`], with structural memoization and per-module guards.

use crate::knowledge::{DesignVerdictStore, KnowledgeBase};
use crate::persist::KnowledgeState;
use crate::report::{DesignReport, ModuleOutcome, ModuleReport};
use smartly_core::{Deadline, OptLevel, Pipeline, SharedCexBank, SharedVerdictStore};
use smartly_failpoint as fail;
use smartly_netlist::{Design, Module, NetlistError};
use smartly_telemetry::{ArgValue, SpanEvent, Trace, TraceClock, TraceHandle};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker-thread stack reservation. Netlist traversals (elaboration,
/// AIG folds, emission) recurse with cone depth, and the Medium/Large
/// corpus scales produce chains deep enough to blow the 2 MiB platform
/// default under debug frame sizes. Virtual reservation only — pages
/// commit as touched.
const WORKER_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Configuration for [`optimize_design`].
#[derive(Clone, Debug)]
pub struct DriverOptions {
    /// Optimization level (paper Table III column).
    pub level: OptLevel,
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Verify every optimized module against its original with the AIG
    /// miter (memo-cache hits inherit their representative's verdict).
    pub verify: bool,
    /// Optimize structurally identical modules once and clone the result
    /// (common in generated/industrial RTL).
    pub memoize: bool,
    /// Size guard: modules with more live cells than this are passed
    /// through untouched and reported as skipped.
    pub max_cells: Option<usize>,
    /// Per-module wall-clock budget, enforced **cooperatively**: the
    /// worker threads a [`smartly_sat::Deadline`] through the pipeline
    /// into the query engine and the CDCL search loop (polled every few
    /// conflicts — the `deadline_checks` counter in the timing JSON
    /// shows the poll count, bounding interruption latency), so an
    /// expired budget interrupts a stuck SAT call mid-flight instead of
    /// only being observed at pass boundaries. A module that hit its
    /// deadline — or whose pipeline returned past the budget — is
    /// reverted to its original netlist and reported as timed out.
    ///
    /// Because expiry depends on wall time, enabling the budget can make
    /// reports differ between otherwise identical runs. Interrupted
    /// queries surface as budget-limited `Unknown` verdicts and are
    /// never published to design-level knowledge stores, so other
    /// modules' results and warm-start files stay sound.
    pub timeout: Option<Duration>,
    /// An externally owned cancellation token threaded into every
    /// module's pipeline instead of a per-module [`Deadline`] derived
    /// from [`timeout`](DriverOptions::timeout). This is the `smartly
    /// serve` seam: the daemon arms one trip-able deadline per *job* so
    /// its watchdog and drain ladder can interrupt a running
    /// optimization cooperatively (modules interrupted mid-flight
    /// revert and report as timed out, exactly as with `timeout`).
    /// Takes precedence over `timeout` when both are set. `None` (the
    /// default) keeps the CLI behaviour.
    pub external_deadline: Option<Deadline>,
    /// Attach one design-level [`KnowledgeBase`] to every module's
    /// pipeline so structurally similar modules seed each other's
    /// counterexample-replay vectors (see [`crate::knowledge`]). Off is
    /// the ablation baseline; verdicts and areas are identical either
    /// way.
    pub share_knowledge: bool,
    /// Shape bound for the shared knowledge base.
    pub knowledge_capacity: usize,
    /// Warm-start state loaded from a knowledge file
    /// ([`crate::persist::load_state`]): the run then uses this state's
    /// bank and verdict store instead of creating fresh ones, and
    /// [`DesignReport::kb`] reports the load/hit counters. `None` (the
    /// default) runs cold with in-process state only. Ignored when
    /// `share_knowledge` is off.
    pub knowledge_state: Option<Arc<KnowledgeState>>,
    /// Record hierarchical spans (module → round → pass → query → SAT
    /// call) into per-module trace buffers and attach the merged
    /// [`Trace`] to [`DesignReport::trace`]. Purely observational:
    /// counters, areas, and `--digest` output are byte-identical with
    /// tracing on or off (latency histograms are always collected either
    /// way — only span recording is gated here).
    pub trace: bool,
    /// Base pipeline configuration; `verify` above overrides its flag,
    /// and `share_knowledge` above overrides its `shared_bank` and
    /// `shared_verdicts`.
    pub pipeline: Pipeline,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            level: OptLevel::Full,
            jobs: 0,
            verify: false,
            memoize: true,
            max_cells: None,
            timeout: None,
            external_deadline: None,
            share_knowledge: true,
            knowledge_capacity: crate::knowledge::DEFAULT_KNOWLEDGE_CAPACITY,
            knowledge_state: None,
            trace: false,
            pipeline: Pipeline::default(),
        }
    }
}

impl DriverOptions {
    fn effective_jobs(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let jobs = if self.jobs == 0 { hw } else { self.jobs };
        jobs.clamp(1, work_items.max(1))
    }
}

/// Parses a CLI-style level name (`yosys`, `sat`, `rebuild`, `full`).
pub fn level_from_str(s: &str) -> Option<OptLevel> {
    OptLevel::ALL.into_iter().find(|l| l.name() == s)
}

/// The module's canonical text: its Verilog emission with the name
/// blanked, so two modules elaborated from identical bodies compare
/// equal. The memo cache keys on this full text — not a hash of it — so
/// a hash collision can never substitute the wrong module's result.
fn canonical_text(module: &mut Module) -> String {
    let saved = std::mem::replace(&mut module.name, "__memo__".to_string());
    let text = smartly_verilog::emit_verilog(module);
    module.name = saved;
    text
}

/// A stable 64-bit structural fingerprint of a module, independent of the
/// module's *name*: two modules elaborated from identical bodies hash
/// equal. FNV-1a over the canonical emission, deterministic across
/// processes and builds. (A fingerprint for logging/diffing; the memo
/// cache itself compares full canonical texts.)
pub fn structural_key(module: &Module) -> u64 {
    let mut canon = module.clone();
    let text = canonical_text(&mut canon);
    let mut h = Fnv1a::default();
    h.write(text.as_bytes());
    h.finish()
}

/// FNV-1a: tiny, seedless, stable across runs (unlike `DefaultHasher`,
/// which only promises stability within one program execution).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Per-module work cell shared with the worker pool.
struct Slot {
    module: Module,
    done: Option<ModuleReport>,
    error: Option<NetlistError>,
    /// Finished span events for this module's optimization. The
    /// recording handle is `Rc`-based and never leaves the worker; only
    /// this plain (and `Send`) event vector crosses back.
    trace: Option<Vec<SpanEvent>>,
}

/// Optimizes every module of `design` in place and returns the aggregate
/// report.
///
/// Modules are distributed over a pool of scoped worker threads through a
/// shared atomic cursor (idle workers steal the next heaviest pending
/// module), so wall time tracks the slowest module rather than the sum.
/// The report lists modules in the design's original order regardless of
/// completion order, and every field except wall times is a pure function
/// of the input — `--jobs 1` and `--jobs N` produce identical
/// [`DesignReport::digest`]s.
///
/// # Errors
///
/// Returns the first netlist error in module order. `design` keeps its
/// original netlist for every module that errored or never ran (an
/// erroring worker restores the pristine module before recording the
/// failure), so a recovering caller never sees half-optimized state.
pub fn optimize_design(
    design: &mut Design,
    opts: &DriverOptions,
) -> Result<DesignReport, NetlistError> {
    let started = Instant::now();
    let mut modules = design.take_modules();
    let n = modules.len();

    // Memoization: representative = first module (in design order) with
    // the same canonical text. Duplicates are filled in after the pool
    // runs. Keying on the full text (not a hash) makes a false memo hit
    // impossible.
    let rep_of: Vec<usize> = if opts.memoize {
        let mut first: HashMap<String, usize> = HashMap::new();
        modules
            .iter_mut()
            .enumerate()
            .map(|(i, m)| *first.entry(canonical_text(m)).or_insert(i))
            .collect()
    } else {
        (0..n).collect()
    };

    // Heaviest-first work order: start the biggest modules early so a
    // giant module never lands last on an otherwise drained queue.
    let mut work: Vec<usize> = (0..n).filter(|&i| rep_of[i] == i).collect();
    let weight: Vec<usize> = modules.iter().map(Module::live_cell_count).collect();
    work.sort_by_key(|&i| (std::cmp::Reverse(weight[i]), i));

    let slots: Vec<Mutex<Slot>> = modules
        .into_iter()
        .map(|m| {
            Mutex::new(Slot {
                module: m,
                done: None,
                error: None,
                trace: None,
            })
        })
        .collect();

    let mut pipeline = opts.pipeline.clone();
    pipeline.verify = opts.verify;
    // one knowledge base + verdict store per design run: every worker's
    // pipeline holds the same Arcs, so module sweeps publish and import
    // concurrently. A warm-start state (loaded from a knowledge file)
    // supplies pre-seeded instances instead.
    let (knowledge, verdicts): (Option<Arc<KnowledgeBase>>, Option<Arc<DesignVerdictStore>>) =
        if opts.share_knowledge {
            match &opts.knowledge_state {
                Some(state) => (Some(state.bank.clone()), Some(state.verdicts.clone())),
                None => (
                    Some(Arc::new(KnowledgeBase::new(opts.knowledge_capacity))),
                    Some(Arc::new(DesignVerdictStore::new())),
                ),
            }
        } else {
            (None, None)
        };
    pipeline.shared_bank = knowledge.clone().map(|k| k as Arc<dyn SharedCexBank>);
    pipeline.shared_verdicts = verdicts.map(|v| v as Arc<dyn SharedVerdictStore>);

    let jobs = opts.effective_jobs(work.len());
    // One clock for the whole design run so per-module tracks share a
    // time base when merged. `TraceClock` is `Copy`, so each worker gets
    // its own copy and builds a thread-confined recording handle from it.
    let clock = opts.trace.then(TraceClock::start);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..jobs {
            // explicit stack: netlist traversals recurse with cone depth,
            // and Medium/Large circuits exceed the 2 MiB platform default
            // in debug builds (the reservation is virtual; pages commit
            // only as touched)
            std::thread::Builder::new()
                .name(format!("smartly-worker-{i}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn_scoped(scope, || loop {
                    let w = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = work.get(w) else { break };
                    let mut slot = slots[idx].lock().expect("slot poisoned");
                    run_one(&mut slot, &pipeline, opts, clock);
                })
                .expect("spawn worker");
        }
    });

    // Reassemble in original order; duplicates clone their representative.
    let mut reports: Vec<ModuleReport> = Vec::with_capacity(n);
    let mut out_modules: Vec<Option<Module>> = (0..n).map(|_| None).collect();
    let mut first_error: Option<NetlistError> = None;
    // Per-module trace tracks, collected in design order so the merged
    // trace is structurally deterministic regardless of worker schedule.
    let mut tracks: Vec<(String, Vec<SpanEvent>)> = Vec::new();

    let mut finished: Vec<Slot> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned"))
        .collect();

    for i in 0..n {
        let rep = rep_of[i];
        if rep == i {
            let slot = &mut finished[i];
            if let Some(err) = slot.error.take() {
                first_error.get_or_insert(err);
            }
            // A missing report means the worker errored (or panicked)
            // on this slot; keep alignment with a passthrough entry.
            let report = slot
                .done
                .take()
                .unwrap_or_else(|| ModuleReport::untouched(&slot.module));
            if let Some(events) = slot.trace.take() {
                tracks.push((report.name.clone(), events));
            }
            reports.push(report);
            out_modules[i] = Some(std::mem::replace(&mut slot.module, Module::new("")));
        } else {
            // rep < i always (first occurrence), so its slot is done.
            let mut cloned = out_modules[rep].as_ref().expect("rep filled").clone();
            let name = std::mem::take(&mut finished[i].module.name);
            cloned.name = name.clone();
            let rep_name = reports[rep].name.clone();
            reports.push(reports[rep].as_memo_hit(name, rep_name));
            out_modules[i] = Some(cloned);
        }
    }

    design.replace_modules(
        out_modules
            .into_iter()
            .map(|m| m.expect("filled"))
            .collect(),
    );

    if let Some(err) = first_error {
        return Err(err);
    }

    let mut report = DesignReport::aggregate(opts.level, jobs, reports, started.elapsed());
    report.knowledge = knowledge.map(|k| k.stats());
    if opts.share_knowledge {
        report.kb = opts.knowledge_state.as_ref().map(|s| s.kb_report());
    }
    if opts.trace {
        let mut trace = Trace::new(format!("smartly-{}", opts.level.name()));
        for (label, events) in tracks {
            trace.push_track(label, events);
        }
        report.trace = Some(trace);
    }
    Ok(report)
}

/// Fail-point site: panics inside the guarded per-module region (arg:
/// the module name, so an `@filter` can target one module).
pub const FP_MODULE_PANIC: &str = "driver.module.panic";
/// Fail-point site: forces a deterministic, already-counting-down
/// deadline onto a module (arg: the module name), exercising the
/// cooperative-interruption ladder without real wall-clock pressure.
pub const FP_MODULE_DEADLINE: &str = "driver.module.deadline";

/// Polls a fail-point-forced deadline survives before expiring: one
/// round boundary and one SAT-layer entry pass, so the third poll trips
/// inside whatever the module is doing next — mid-SAT search when the
/// module has solver work.
const FORCED_DEADLINE_CHECKS: u64 = 3;

fn run_one(slot: &mut Slot, pipeline: &Pipeline, opts: &DriverOptions, clock: Option<TraceClock>) {
    let cells_before = slot.module.live_cell_count();
    if let Some(limit) = opts.max_cells {
        if cells_before > limit {
            slot.done = Some(ModuleReport {
                name: slot.module.name.clone(),
                cells_before,
                cells_after: cells_before,
                outcome: ModuleOutcome::SkippedTooLarge { limit },
                report: None,
                wall: Duration::ZERO,
            });
            return;
        }
    }

    // Keep the pristine module: restored on pipeline error, on a blown
    // or tripped deadline, and on a caught panic (so the design never
    // silently holds half-optimized netlists). Lives only while this
    // worker runs this module, so peak overhead is one module per
    // worker, not per design.
    let original = slot.module.clone();
    let deadline = if fail::check_arg(FP_MODULE_DEADLINE, &slot.module.name) {
        Deadline::after_checks(FORCED_DEADLINE_CHECKS)
    } else {
        match (&opts.external_deadline, opts.timeout) {
            // the job-level token (smartly serve) outranks the
            // per-module budget: one deadline spans the whole design
            (Some(job), _) => job.clone(),
            (None, Some(budget)) => Deadline::after(budget),
            (None, None) => Deadline::none(),
        }
    };
    let t0 = Instant::now();
    // Panic isolation: everything that can execute pass code runs under
    // the guard. On panic the slot module is restored from `original`
    // and the trace buffer is discarded, so no state the unwound pass
    // touched survives (which is what justifies the guard's
    // AssertUnwindSafe — see `panic_guard`).
    let guarded = crate::panic_guard::catch(|| {
        let module = &mut slot.module;
        if fail::check_arg(FP_MODULE_PANIC, &module.name) {
            panic!("failpoint: injected panic in module '{}'", module.name);
        }
        let trace = match clock {
            Some(clock) => TraceHandle::recording(clock),
            None => TraceHandle::disabled(),
        };
        trace.begin_with("module", &[("cells", ArgValue::U64(cells_before as u64))]);
        let result = pipeline.run_with_deadline(module, opts.level, &trace, &deadline);
        trace.end_with(&[(
            "cells_after",
            ArgValue::U64(module.live_cell_count() as u64),
        )]);
        // By here every pipeline-internal clone of the handle has been
        // dropped, so `finish` yields the events (or `None` when
        // disabled).
        (result, trace.finish())
    });
    let wall = t0.elapsed();
    let (result, trace_events) = match guarded {
        Ok(r) => r,
        Err(panic) => {
            slot.module = original;
            slot.trace = None;
            slot.done = Some(ModuleReport {
                name: slot.module.name.clone(),
                cells_before,
                cells_after: cells_before,
                outcome: ModuleOutcome::Poisoned {
                    message: panic.message,
                    backtrace: panic.backtrace,
                },
                report: None,
                wall,
            });
            return;
        }
    };
    slot.trace = trace_events;
    match result {
        Ok(report) => {
            // Revert when the cooperative deadline fired mid-pipeline
            // *or* the pipeline returned past the wall budget without
            // ever polling (a module whose time went to non-SAT work).
            let budget_blown = opts.timeout.is_some_and(|budget| wall > budget);
            if deadline.was_tripped() || budget_blown {
                slot.module = original;
                slot.done = Some(ModuleReport {
                    name: slot.module.name.clone(),
                    cells_before,
                    cells_after: cells_before,
                    outcome: ModuleOutcome::TimedOut {
                        budget: opts.timeout.unwrap_or(Duration::ZERO),
                    },
                    report: None,
                    wall,
                });
                return;
            }
            slot.done = Some(ModuleReport {
                name: slot.module.name.clone(),
                cells_before,
                cells_after: slot.module.live_cell_count(),
                outcome: ModuleOutcome::Optimized,
                report: Some(report),
                wall,
            });
        }
        Err(err) => {
            slot.module = original;
            slot.error = Some(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux_module(name: &str) -> Module {
        let mut m = Module::new(name);
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let inner = m.mux(&b, &a, &sr);
        let outer = m.mux(&a, &inner, &s);
        m.add_output("y", &outer);
        m
    }

    #[test]
    fn structural_key_ignores_module_name_only() {
        let a = mux_module("alpha");
        let b = mux_module("beta");
        assert_eq!(structural_key(&a), structural_key(&b));

        let mut c = mux_module("gamma");
        let extra = c.add_input("z", 1);
        c.add_output("zz", &extra);
        assert_ne!(structural_key(&a), structural_key(&c));
    }

    #[test]
    fn level_names_round_trip() {
        for level in OptLevel::ALL {
            assert_eq!(level_from_str(level.name()), Some(level));
        }
        assert_eq!(level_from_str("bogus"), None);
    }

    #[test]
    fn size_guard_skips_large_modules() {
        let mut d = Design::new();
        d.add_module(mux_module("big"));
        let opts = DriverOptions {
            max_cells: Some(1),
            ..Default::default()
        };
        let report = optimize_design(&mut d, &opts).expect("driver");
        assert!(matches!(
            report.modules[0].outcome,
            ModuleOutcome::SkippedTooLarge { .. }
        ));
        // untouched: same cell count as input
        assert_eq!(
            report.modules[0].cells_after,
            report.modules[0].cells_before
        );
    }
}
