//! Panic isolation for the module work pool.
//!
//! A panicking pass must cost one module, not the process: the worker
//! wraps each module's optimization in [`catch`], which runs the
//! closure under [`std::panic::catch_unwind`] and — on panic — hands
//! back the payload message plus a backtrace captured *at the panic
//! site* (a process-global panic hook records it into a thread-local;
//! the hook delegates to the previous hook for panics outside a guarded
//! region, so ordinary test failures still print normally).
//!
//! The `AssertUnwindSafe` is justified by the caller's protocol: the
//! driver discards everything the closure touched — the module slot is
//! restored from a pristine clone and the trace buffer is dropped — so
//! no state mutated by a half-finished pass is ever observed. The
//! design-level knowledge stores a pass may share are append-only maps
//! behind their own mutexes whose entries are re-verified on every
//! replay, so even a publish interrupted mid-flight degrades to a
//! missed cache hit, never a wrong verdict.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// What a caught panic left behind.
#[derive(Clone, Debug)]
pub(crate) struct PanicCapture {
    /// The panic payload, when it was a string (the overwhelmingly
    /// common case); a placeholder otherwise.
    pub message: String,
    /// Backtrace captured at the panic site by the hook, with the panic
    /// location header prepended.
    pub backtrace: String,
}

thread_local! {
    /// Non-zero while this thread is inside a [`catch`] region.
    static GUARD_DEPTH: RefCell<u32> = const { RefCell::new(0) };
    /// Location + backtrace recorded by the hook for the panic being
    /// unwound, if any.
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs the capture hook exactly once, chaining to whatever hook was
/// active before (the default printer, or a test harness's).
fn install_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let guarded = GUARD_DEPTH.with(|d| *d.borrow() > 0);
            if guarded {
                let location = info
                    .location()
                    .map(|l| format!("at {}:{}:{}", l.file(), l.line(), l.column()))
                    .unwrap_or_else(|| "at <unknown location>".to_string());
                let backtrace = std::backtrace::Backtrace::force_capture();
                LAST_PANIC.with(|p| {
                    *p.borrow_mut() = Some(format!("{location}\n{backtrace}"));
                });
                // swallow the default stderr printout: the panic is
                // being converted into a ModuleOutcome, not a crash
            } else {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into a [`PanicCapture`] instead of
/// unwinding into the caller. See the module docs for why the blanket
/// `AssertUnwindSafe` is sound under the driver's restore-on-panic
/// protocol.
pub(crate) fn catch<T>(f: impl FnOnce() -> T) -> Result<T, PanicCapture> {
    install_hook();
    GUARD_DEPTH.with(|d| *d.borrow_mut() += 1);
    let result = catch_unwind(AssertUnwindSafe(f));
    GUARD_DEPTH.with(|d| *d.borrow_mut() -= 1);
    result.map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let backtrace = LAST_PANIC
            .with(|p| p.borrow_mut().take())
            .unwrap_or_else(|| "<no backtrace captured>".to_string());
        PanicCapture { message, backtrace }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_returns_the_value() {
        assert_eq!(catch(|| 41 + 1).unwrap(), 42);
    }

    #[test]
    fn str_panic_is_captured_with_location() {
        let err = catch(|| -> u32 { panic!("boom at the pass") }).unwrap_err();
        assert_eq!(err.message, "boom at the pass");
        assert!(
            err.backtrace.contains("panic_guard.rs"),
            "backtrace should point at the panic site: {}",
            err.backtrace
        );
    }

    #[test]
    fn formatted_panic_is_captured() {
        let module = "case_chain";
        let err = catch(|| -> u32 { panic!("injected panic in '{module}'") }).unwrap_err();
        assert_eq!(err.message, "injected panic in 'case_chain'");
    }

    #[test]
    fn guard_nests_and_resets() {
        let outer = catch(|| {
            let inner = catch(|| -> u32 { panic!("inner") });
            assert!(inner.is_err());
            7u32
        });
        assert_eq!(outer.unwrap(), 7);
    }
}
