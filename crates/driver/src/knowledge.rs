//! The design-level knowledge base: a thread-safe counterexample bank
//! shared by every module sweep of one [`crate::optimize_design`] run.
//!
//! Per-module query engines already cache counterexamples *within* a
//! sweep, but the per-module banks die with the sweep — a design full of
//! bus-replicated peripherals and parameter variants pays the cold-start
//! cost once per module. [`KnowledgeBase`] implements
//! [`smartly_core::SharedCexBank`]: SAT models are published under their
//! cone's canonical *shape signature*
//! ([`smartly_core::subgraph::ConeShape`]), and a sibling module whose
//! memo cache *near-misses* (same cone shape, different nets, so the
//! full-text module memo cannot fire) imports them as 64-wide replay
//! vectors instead of re-deriving witnesses from scratch.
//!
//! Soundness and determinism rest on the replay contract (see the
//! [`SharedCexBank`] docs): imported lanes are always re-verified
//! against the querying cone's own path condition, a refutation
//! concludes exactly the `Unknown` SAT would, and shared witnesses
//! never feed the SAT polarity skip. The bank can therefore be filled
//! in any scheduling order — every verdict the conflict budget does not
//! cut short is identical across `--jobs` settings and bank on/off, and
//! with it areas and digests (CI pins this empirically); only the
//! funnel-layer *attribution* (which layer answered) shifts, which is
//! why those counters live outside the digest.
//!
//! The bank is bounded: at most [`KnowledgeBase::capacity`] shapes are
//! tracked, evicted oldest-first, and each shape holds a 64-lane ring of
//! models (later models overwrite the oldest lane).

use smartly_core::{SharedCexBank, SharedVectors};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Default bound on tracked cone shapes.
pub const DEFAULT_KNOWLEDGE_CAPACITY: usize = 8_192;

/// One shape's ring of packed models.
#[derive(Clone, Debug)]
struct ShapeEntry {
    /// Intern-table width of the shape (collision guard: lookups with a
    /// different width miss).
    width: usize,
    /// Per-intern-index 64-lane value words.
    planes: Vec<u64>,
    /// Lanes holding a model (≤ 64).
    filled: u32,
    /// Next lane to (over)write.
    cursor: u32,
}

#[derive(Debug, Default)]
struct Bank {
    shapes: HashMap<u64, ShapeEntry>,
    /// Shape insertion order, for oldest-first eviction.
    order: VecDeque<u64>,
    stats: KnowledgeStats,
}

/// Aggregate telemetry of a [`KnowledgeBase`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KnowledgeStats {
    /// Distinct cone shapes currently tracked.
    pub shapes: usize,
    /// Models published by module sweeps.
    pub published: u64,
    /// Lookups that returned vectors.
    pub hits: u64,
    /// Lookups that found nothing (unknown shape, width mismatch, or an
    /// empty ring).
    pub misses: u64,
    /// Shapes evicted by the capacity bound.
    pub evictions: u64,
}

/// The design-lifetime shared counterexample bank (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct KnowledgeBase {
    inner: Mutex<Bank>,
    capacity: usize,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        KnowledgeBase::new(DEFAULT_KNOWLEDGE_CAPACITY)
    }
}

impl KnowledgeBase {
    /// A bank bounded to `capacity` cone shapes (minimum 1).
    pub fn new(capacity: usize) -> Self {
        KnowledgeBase {
            inner: Mutex::new(Bank::default()),
            capacity: capacity.max(1),
        }
    }

    /// The configured shape bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the bank's telemetry.
    pub fn stats(&self) -> KnowledgeStats {
        let bank = self.inner.lock().expect("knowledge bank poisoned");
        let mut s = bank.stats;
        s.shapes = bank.shapes.len();
        s
    }
}

impl SharedCexBank for KnowledgeBase {
    fn lookup(&self, sig: u64, width: usize) -> Option<SharedVectors> {
        let mut bank = self.inner.lock().expect("knowledge bank poisoned");
        match bank.shapes.get(&sig) {
            Some(e) if e.width == width && e.filled > 0 => {
                let vectors = SharedVectors {
                    planes: e.planes.clone(),
                    lanes: e.filled,
                };
                bank.stats.hits += 1;
                Some(vectors)
            }
            _ => {
                bank.stats.misses += 1;
                None
            }
        }
    }

    fn publish(&self, sig: u64, values: &[bool]) {
        let mut bank = self.inner.lock().expect("knowledge bank poisoned");
        bank.stats.published += 1;
        if let Some(e) = bank.shapes.get_mut(&sig) {
            if e.width != values.len() {
                // signature collision between different shapes: keep the
                // incumbent (first-wins is as sound as any policy — the
                // colliding shape simply misses on lookup)
                return;
            }
            let lane = e.cursor % 64;
            e.cursor = e.cursor.wrapping_add(1);
            e.filled = (e.filled + 1).min(64);
            for (plane, &v) in e.planes.iter_mut().zip(values) {
                if v {
                    *plane |= 1 << lane;
                } else {
                    *plane &= !(1 << lane);
                }
            }
            return;
        }
        while bank.shapes.len() >= self.capacity {
            let Some(oldest) = bank.order.pop_front() else {
                break;
            };
            if bank.shapes.remove(&oldest).is_some() {
                bank.stats.evictions += 1;
            }
        }
        let planes = values
            .iter()
            .map(|&v| if v { 1u64 } else { 0 })
            .collect::<Vec<u64>>();
        bank.shapes.insert(
            sig,
            ShapeEntry {
                width: values.len(),
                planes,
                filled: 1,
                cursor: 1,
            },
        );
        bank.order.push_back(sig);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_round_trips_lanes() {
        let kb = KnowledgeBase::new(8);
        kb.publish(42, &[true, false, true]);
        kb.publish(42, &[false, true, true]);
        let v = kb.lookup(42, 3).expect("hit");
        assert_eq!(v.lanes, 2);
        assert_eq!(v.planes, vec![0b01, 0b10, 0b11]);
        assert_eq!(kb.stats().published, 2);
        assert_eq!(kb.stats().hits, 1);
    }

    #[test]
    fn width_mismatch_misses_and_never_mixes() {
        let kb = KnowledgeBase::new(8);
        kb.publish(7, &[true, true]);
        // a colliding shape with a different width neither reads nor
        // corrupts the incumbent entry
        assert!(kb.lookup(7, 3).is_none());
        kb.publish(7, &[false, false, false]);
        let v = kb.lookup(7, 2).expect("incumbent survives");
        assert_eq!(v.lanes, 1);
        assert_eq!(kb.stats().misses, 1);
    }

    #[test]
    fn capacity_evicts_oldest_shape() {
        let kb = KnowledgeBase::new(2);
        kb.publish(1, &[true]);
        kb.publish(2, &[true]);
        kb.publish(3, &[true]);
        assert!(kb.lookup(1, 1).is_none(), "oldest shape evicted");
        assert!(kb.lookup(2, 1).is_some());
        assert!(kb.lookup(3, 1).is_some());
        assert_eq!(kb.stats().evictions, 1);
        assert_eq!(kb.stats().shapes, 2);
    }

    #[test]
    fn ring_overwrites_past_64_lanes() {
        let kb = KnowledgeBase::new(2);
        for i in 0..70 {
            kb.publish(9, &[i % 2 == 0]);
        }
        let v = kb.lookup(9, 1).expect("hit");
        assert_eq!(v.lanes, 64);
    }
}
