//! The design-level knowledge base: a thread-safe counterexample bank
//! and verdict store shared by every module sweep of one
//! [`crate::optimize_design`] run — and, through [`crate::persist`],
//! across runs.
//!
//! Per-module query engines already cache counterexamples *within* a
//! sweep, but the per-module banks die with the sweep — a design full of
//! bus-replicated peripherals and parameter variants pays the cold-start
//! cost once per module. [`KnowledgeBase`] implements
//! [`smartly_core::SharedCexBank`]: SAT models are published under their
//! cone's canonical *shape signature*
//! ([`smartly_core::subgraph::ConeShape`]), and a sibling module whose
//! memo cache *near-misses* (same cone shape, different nets, so the
//! full-text module memo cannot fire) imports them as 64-wide replay
//! vectors instead of re-deriving witnesses from scratch.
//!
//! Soundness and determinism rest on the replay contract (see the
//! [`SharedCexBank`] docs): imported lanes are always re-verified
//! against the querying cone's own path condition, a refutation
//! concludes exactly the `Unknown` SAT would, and shared witnesses
//! never feed the SAT polarity skip. The bank can therefore be filled
//! in any scheduling order — every verdict the conflict budget does not
//! cut short is identical across `--jobs` settings and bank on/off, and
//! with it areas and digests (CI pins this empirically); only the
//! funnel-layer *attribution* (which layer answered) shifts, which is
//! why those counters live outside the digest.
//!
//! The bank is bounded: at most [`KnowledgeBase::capacity`] shapes are
//! tracked, evicted by *hit-count-weighted retention* (the least-hit,
//! then oldest, shape goes first, so hot shapes survive memory pressure
//! and the save/load cycle), and each shape holds a 64-lane ring of
//! models (later models overwrite the oldest lane).
//!
//! [`DesignVerdictStore`] is the verdict-side sibling
//! ([`smartly_core::SharedVerdictStore`]): canonical
//! [`query_key`](smartly_core::subgraph::query_key) → conclusive
//! verdict. It holds two generations — an immutable *disk* generation
//! loaded from a knowledge file, which lookups serve, and a *fresh*
//! generation accumulated from this run's conclusive decisions, which
//! only the save path reads. Serving only the immutable generation
//! keeps the hit pattern (and the `by_disk_verdict` counter) a pure
//! function of the loaded file and the input design, independent of
//! worker scheduling.

use smartly_core::decide::Decision;
use smartly_core::{SharedCexBank, SharedVectors, SharedVerdictStore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on tracked cone shapes.
pub const DEFAULT_KNOWLEDGE_CAPACITY: usize = 8_192;

/// One shape's ring of packed models.
#[derive(Clone, Debug)]
struct ShapeEntry {
    /// Intern-table width of the shape (collision guard: lookups with a
    /// different width miss).
    width: usize,
    /// Per-intern-index 64-lane value words.
    planes: Vec<u64>,
    /// Lanes holding a model (≤ 64).
    filled: u32,
    /// Next lane to (over)write.
    cursor: u32,
    /// Lookups this shape has answered (lifetime, carried across the
    /// save/load cycle) — the retention weight.
    hits: u64,
    /// Insertion sequence, the eviction tie-break (older goes first).
    seq: u64,
    /// Whether the entry was loaded from a knowledge file.
    from_disk: bool,
}

#[derive(Debug, Default)]
struct Bank {
    shapes: HashMap<u64, ShapeEntry>,
    /// Monotonic insertion counter backing the eviction tie-break.
    next_seq: u64,
    stats: KnowledgeStats,
}

impl Bank {
    /// Frees one slot by dropping the least-valuable shape: fewest hits,
    /// then oldest insertion. The linear scan runs only when a *new*
    /// shape arrives at capacity, and every new shape is minted by a
    /// SAT solve — the scan is microseconds next to the solve that
    /// produced the model. Returns whether a shape was dropped, so
    /// callers never loop on an empty bank.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .shapes
            .iter()
            .min_by_key(|(sig, e)| (e.hits, e.seq, **sig))
            .map(|(sig, _)| *sig);
        match victim {
            Some(sig) => {
                self.shapes.remove(&sig);
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }
}

/// Aggregate telemetry of a [`KnowledgeBase`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KnowledgeStats {
    /// Distinct cone shapes currently tracked.
    pub shapes: usize,
    /// Models published by module sweeps.
    pub published: u64,
    /// Lookups that returned vectors.
    pub hits: u64,
    /// Lookups answered by a shape loaded from a knowledge file (a
    /// subset of `hits`).
    pub disk_hits: u64,
    /// Lookups that found nothing (unknown shape, width mismatch, or an
    /// empty ring).
    pub misses: u64,
    /// Shapes evicted by the capacity bound.
    pub evictions: u64,
}

/// One shape's serializable state, as exchanged with [`crate::persist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeRecord {
    /// The cone shape signature ([`smartly_core::subgraph::ConeShape::sig`]).
    pub sig: u64,
    /// Intern-table width.
    pub width: u32,
    /// Lanes holding a model (≤ 64).
    pub filled: u32,
    /// Next ring lane to overwrite.
    pub cursor: u32,
    /// Lifetime lookup hits (the retention weight).
    pub hits: u64,
    /// Per-intern-index 64-lane value words (`width` of them).
    pub planes: Vec<u64>,
}

/// The design-lifetime shared counterexample bank (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct KnowledgeBase {
    inner: Mutex<Bank>,
    capacity: usize,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        KnowledgeBase::new(DEFAULT_KNOWLEDGE_CAPACITY)
    }
}

impl KnowledgeBase {
    /// A bank bounded to `capacity` cone shapes (minimum 1).
    pub fn new(capacity: usize) -> Self {
        KnowledgeBase {
            inner: Mutex::new(Bank::default()),
            capacity: capacity.max(1),
        }
    }

    /// The configured shape bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the bank's telemetry.
    pub fn stats(&self) -> KnowledgeStats {
        let bank = self.inner.lock().expect("knowledge bank poisoned");
        let mut s = bank.stats;
        s.shapes = bank.shapes.len();
        s
    }

    /// Seeds one shape from persistent state (marked disk-origin; does
    /// not count as a publish). Returns `false` once the bank is full —
    /// loaders feed records hot-first, so the overflow is the cold tail
    /// — or when the record is malformed / the signature already
    /// present.
    pub fn preload(&self, rec: &ShapeRecord) -> bool {
        if rec.planes.len() != rec.width as usize || rec.filled == 0 || rec.filled > 64 {
            return false;
        }
        let mut bank = self.inner.lock().expect("knowledge bank poisoned");
        if bank.shapes.len() >= self.capacity || bank.shapes.contains_key(&rec.sig) {
            return false;
        }
        let seq = bank.next_seq;
        bank.next_seq += 1;
        bank.shapes.insert(
            rec.sig,
            ShapeEntry {
                width: rec.width as usize,
                planes: rec.planes.clone(),
                filled: rec.filled,
                cursor: rec.cursor,
                hits: rec.hits,
                seq,
                from_disk: true,
            },
        );
        true
    }

    /// Serializable snapshot of every tracked shape, hottest first
    /// (hits descending, then signature ascending — a deterministic
    /// order for bounded saves).
    pub fn export(&self) -> Vec<ShapeRecord> {
        let bank = self.inner.lock().expect("knowledge bank poisoned");
        let mut records: Vec<ShapeRecord> = bank
            .shapes
            .iter()
            .map(|(&sig, e)| ShapeRecord {
                sig,
                width: e.width as u32,
                filled: e.filled,
                cursor: e.cursor,
                hits: e.hits,
                planes: e.planes.clone(),
            })
            .collect();
        records.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.sig.cmp(&b.sig)));
        records
    }
}

impl SharedCexBank for KnowledgeBase {
    fn lookup(&self, sig: u64, width: usize) -> Option<SharedVectors> {
        let mut bank = self.inner.lock().expect("knowledge bank poisoned");
        match bank.shapes.get_mut(&sig) {
            Some(e) if e.width == width && e.filled > 0 => {
                e.hits += 1;
                let from_disk = e.from_disk;
                let vectors = SharedVectors {
                    planes: e.planes.clone(),
                    lanes: e.filled,
                };
                bank.stats.hits += 1;
                if from_disk {
                    bank.stats.disk_hits += 1;
                }
                Some(vectors)
            }
            _ => {
                bank.stats.misses += 1;
                None
            }
        }
    }

    fn publish(&self, sig: u64, values: &[bool]) {
        let mut bank = self.inner.lock().expect("knowledge bank poisoned");
        bank.stats.published += 1;
        if let Some(e) = bank.shapes.get_mut(&sig) {
            if e.width != values.len() {
                // signature collision between different shapes: keep the
                // incumbent (first-wins is as sound as any policy — the
                // colliding shape simply misses on lookup)
                return;
            }
            let lane = e.cursor % 64;
            e.cursor = e.cursor.wrapping_add(1);
            e.filled = (e.filled + 1).min(64);
            for (plane, &v) in e.planes.iter_mut().zip(values) {
                if v {
                    *plane |= 1 << lane;
                } else {
                    *plane &= !(1 << lane);
                }
            }
            return;
        }
        while bank.shapes.len() >= self.capacity && bank.evict_one() {}
        let planes = values
            .iter()
            .map(|&v| if v { 1u64 } else { 0 })
            .collect::<Vec<u64>>();
        let seq = bank.next_seq;
        bank.next_seq += 1;
        bank.shapes.insert(
            sig,
            ShapeEntry {
                width: values.len(),
                planes,
                filled: 1,
                cursor: 1,
                hits: 0,
                seq,
                from_disk: false,
            },
        );
    }
}

/// Telemetry of a [`DesignVerdictStore`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VerdictStoreStats {
    /// Entries in the immutable disk generation.
    pub disk_entries: usize,
    /// Entries published this run (fresh generation, saved later).
    pub fresh_entries: usize,
    /// Lookups answered by a disk entry.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Publish calls accepted into the fresh generation.
    pub published: u64,
}

/// The design-level, module-agnostic verdict store (see the [module
/// docs](self) for the two-generation determinism contract).
#[derive(Debug, Default)]
pub struct DesignVerdictStore {
    /// Immutable after construction; the only generation lookups serve.
    disk: HashMap<Box<[u64]>, Decision>,
    /// This run's conclusive verdicts, read only by the save path.
    fresh: Mutex<HashMap<Box<[u64]>, Decision>>,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
}

impl DesignVerdictStore {
    /// An empty store (cold start).
    pub fn new() -> Self {
        DesignVerdictStore::default()
    }

    /// A store whose disk generation holds `entries` (the load path).
    /// Non-conclusive decisions are dropped defensively — the save path
    /// never writes them, so their presence means a corrupt or
    /// hand-edited file.
    pub fn with_disk(entries: impl IntoIterator<Item = (Box<[u64]>, Decision)>) -> Self {
        DesignVerdictStore {
            disk: entries
                .into_iter()
                .filter(|(_, d)| !matches!(d, Decision::Skipped))
                .collect(),
            ..DesignVerdictStore::default()
        }
    }

    /// A snapshot of the store's telemetry.
    pub fn stats(&self) -> VerdictStoreStats {
        VerdictStoreStats {
            disk_entries: self.disk.len(),
            fresh_entries: self.fresh.lock().expect("verdict store poisoned").len(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
        }
    }

    /// Serializable snapshot for saving: this run's fresh verdicts
    /// first, then the carried disk generation, both in ascending key
    /// order (deterministic given the same entry sets) and deduplicated
    /// fresh-first — so under a bounded save the newest knowledge wins.
    pub fn export(&self) -> Vec<(Box<[u64]>, Decision)> {
        let fresh = self.fresh.lock().expect("verdict store poisoned");
        let mut head: Vec<(Box<[u64]>, Decision)> =
            fresh.iter().map(|(k, &d)| (k.clone(), d)).collect();
        head.sort_by(|a, b| a.0.cmp(&b.0));
        let mut tail: Vec<(Box<[u64]>, Decision)> = self
            .disk
            .iter()
            .filter(|(k, _)| !fresh.contains_key(*k))
            .map(|(k, &d)| (k.clone(), d))
            .collect();
        tail.sort_by(|a, b| a.0.cmp(&b.0));
        head.extend(tail);
        head
    }
}

impl SharedVerdictStore for DesignVerdictStore {
    fn lookup(&self, key: &[u64]) -> Option<Decision> {
        match self.disk.get(key) {
            Some(&d) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn publish(&self, key: &[u64], decision: Decision) {
        if matches!(decision, Decision::Skipped) || self.disk.contains_key(key) {
            return;
        }
        let mut fresh = self.fresh.lock().expect("verdict store poisoned");
        if fresh.insert(key.into(), decision).is_none() {
            self.published.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_round_trips_lanes() {
        let kb = KnowledgeBase::new(8);
        kb.publish(42, &[true, false, true]);
        kb.publish(42, &[false, true, true]);
        let v = kb.lookup(42, 3).expect("hit");
        assert_eq!(v.lanes, 2);
        assert_eq!(v.planes, vec![0b01, 0b10, 0b11]);
        assert_eq!(kb.stats().published, 2);
        assert_eq!(kb.stats().hits, 1);
        assert_eq!(kb.stats().disk_hits, 0, "nothing was loaded from disk");
    }

    #[test]
    fn width_mismatch_misses_and_never_mixes() {
        let kb = KnowledgeBase::new(8);
        kb.publish(7, &[true, true]);
        // a colliding shape with a different width neither reads nor
        // corrupts the incumbent entry
        assert!(kb.lookup(7, 3).is_none());
        kb.publish(7, &[false, false, false]);
        let v = kb.lookup(7, 2).expect("incumbent survives");
        assert_eq!(v.lanes, 1);
        assert_eq!(kb.stats().misses, 1);
    }

    #[test]
    fn eviction_keeps_hot_shapes() {
        let kb = KnowledgeBase::new(2);
        kb.publish(1, &[true]);
        kb.publish(2, &[true]);
        // heat shape 1: the retention weight must now protect it even
        // though it is the older insertion
        assert!(kb.lookup(1, 1).is_some());
        kb.publish(3, &[true]);
        assert!(kb.lookup(1, 1).is_some(), "hot shape survives");
        assert!(kb.lookup(2, 1).is_none(), "cold shape was evicted");
        assert!(kb.lookup(3, 1).is_some());
        assert_eq!(kb.stats().evictions, 1);
        assert_eq!(kb.stats().shapes, 2);
    }

    #[test]
    fn eviction_tie_breaks_oldest_first() {
        let kb = KnowledgeBase::new(2);
        kb.publish(1, &[true]);
        kb.publish(2, &[true]);
        kb.publish(3, &[true]);
        assert!(kb.lookup(1, 1).is_none(), "equal hits: oldest goes first");
        assert!(kb.lookup(2, 1).is_some());
        assert!(kb.lookup(3, 1).is_some());
    }

    #[test]
    fn ring_overwrites_past_64_lanes() {
        let kb = KnowledgeBase::new(2);
        for i in 0..70 {
            kb.publish(9, &[i % 2 == 0]);
        }
        let v = kb.lookup(9, 1).expect("hit");
        assert_eq!(v.lanes, 64);
    }

    #[test]
    fn preload_and_export_round_trip() {
        let kb = KnowledgeBase::new(8);
        kb.publish(5, &[true, false]);
        let _ = kb.lookup(5, 2); // one hit, carried through export
        let records = kb.export();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].hits, 1);

        let warm = KnowledgeBase::new(8);
        assert!(warm.preload(&records[0]));
        assert!(!warm.preload(&records[0]), "duplicate preload is refused");
        let v = warm.lookup(5, 2).expect("preloaded shape answers");
        assert_eq!(v.planes, vec![1, 0]);
        let s = warm.stats();
        assert_eq!(s.disk_hits, 1, "hits on loaded shapes are attributed");
        assert_eq!(s.published, 0, "preload is not a publish");
        // exported again, the carried hit count has grown
        assert_eq!(warm.export()[0].hits, 2);
    }

    #[test]
    fn preload_rejects_malformed_records() {
        let kb = KnowledgeBase::new(8);
        let bad_width = ShapeRecord {
            sig: 1,
            width: 3,
            filled: 1,
            cursor: 1,
            hits: 0,
            planes: vec![0; 2],
        };
        assert!(!kb.preload(&bad_width));
        let bad_filled = ShapeRecord {
            sig: 2,
            width: 1,
            filled: 65,
            cursor: 1,
            hits: 0,
            planes: vec![0],
        };
        assert!(!kb.preload(&bad_filled));
        assert_eq!(kb.stats().shapes, 0);
    }

    #[test]
    fn verdict_store_serves_disk_only() {
        let key_a: Box<[u64]> = vec![1, 2, 3].into();
        let store = DesignVerdictStore::with_disk([(key_a.clone(), Decision::Const(true))]);
        assert_eq!(store.lookup(&key_a), Some(Decision::Const(true)));

        // a fresh publish is stored for saving but never served
        store.publish(&[9, 9], Decision::Unknown);
        assert_eq!(store.lookup(&[9, 9]), None);
        // re-publishing a disk key is a no-op
        store.publish(&key_a, Decision::Const(true));
        // skipped decisions are refused outright
        store.publish(&[7], Decision::Skipped);

        let s = store.stats();
        assert_eq!(s.disk_entries, 1);
        assert_eq!(s.fresh_entries, 1);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.published, 1);

        // export: fresh first, then carried disk entries
        let exported = store.export();
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0], (vec![9u64, 9].into(), Decision::Unknown));
        assert_eq!(exported[1], (key_a, Decision::Const(true)));
    }
}
