//! Deterministic design-level reports aggregating per-module
//! [`PipelineReport`]s.
//!
//! Two renderings share one schema: the full JSON (timing included) and
//! the timing-free *digest*. The digest carries only fields that are a
//! pure function of the input design — areas, rewrites, verdicts, and
//! the query counters that no cache can shift (`queries`,
//! `by_inference`, `unreachable`, the pruning gate counts). Funnel-layer
//! *attribution* (which cache layer answered a query) and raw solver
//! telemetry are excluded, for two reasons:
//!
//! * with the design-level shared bank enabled, a query can be refuted
//!   by a sibling module's vectors in one scheduling and by its own
//!   prefilter in another — same verdict, different attribution — so
//!   attribution is not `--jobs`-deterministic;
//! * with a persistent knowledge file, a warm run answers from disk
//!   queries a cold run paid sim/SAT for — same verdict, different
//!   attribution again — and the CI warm-start gate pins warm digests
//!   *byte-identical to the cold digest*, so even scheduling-
//!   independent attribution (`by_memo`, `by_sim`, `by_sat`,
//!   `by_disk_verdict`) must ride with the wall times in the full JSON
//!   only.

use crate::json::Json;
use crate::knowledge::KnowledgeStats;
use crate::persist::KbReport;
use smartly_aig::EquivResult;
use smartly_core::sat_pass::SatPassStats;
use smartly_core::{FunnelProfile, Layer, OptLevel, PipelineReport};
use smartly_netlist::Module;
use smartly_telemetry::{Counters, Histogram, Trace};
use std::fmt;
use std::time::Duration;

/// How much of the per-module detail the human rendering prints.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Verbosity {
    /// Totals only — per-module lines suppressed (`--quiet`).
    Quiet,
    /// Header, one line per module, totals (the default `Display`).
    #[default]
    Normal,
    /// `Normal` plus funnel/solver/knowledge counter lines (`-v`).
    Verbose,
}

/// How the driver handled one module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModuleOutcome {
    /// The pipeline ran on this module.
    Optimized,
    /// Structurally identical to an earlier module; its optimized netlist
    /// and report were cloned instead of re-running the pipeline.
    MemoHit {
        /// Name of the representative module that was actually optimized.
        of: String,
    },
    /// Exceeded [`crate::DriverOptions::max_cells`]; passed through
    /// untouched.
    SkippedTooLarge {
        /// The configured cell limit.
        limit: usize,
    },
    /// Optimization finished but blew the
    /// [`crate::DriverOptions::timeout`] budget; the original netlist was
    /// restored.
    TimedOut {
        /// The configured budget.
        budget: Duration,
    },
    /// The pipeline panicked on this module. The panic was caught at the
    /// module boundary, the original netlist was restored, and the rest
    /// of the design kept optimizing — a bad pass costs one module, not
    /// the process.
    Poisoned {
        /// The panic payload message.
        message: String,
        /// Backtrace captured at the panic site (timing JSON only —
        /// never part of the digest).
        backtrace: String,
    },
    /// No report was produced (worker error); passed through untouched.
    Untouched,
}

impl ModuleOutcome {
    /// Stable lowercase tag for machine-readable output.
    pub fn tag(&self) -> &'static str {
        match self {
            ModuleOutcome::Optimized => "optimized",
            ModuleOutcome::MemoHit { .. } => "memo_hit",
            ModuleOutcome::SkippedTooLarge { .. } => "skipped_too_large",
            ModuleOutcome::TimedOut { .. } => "timed_out",
            ModuleOutcome::Poisoned { .. } => "poisoned",
            ModuleOutcome::Untouched => "untouched",
        }
    }
}

/// One module's slice of a [`DesignReport`].
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name.
    pub name: String,
    /// Live cells before the driver touched the module.
    pub cells_before: usize,
    /// Live cells afterwards.
    pub cells_after: usize,
    /// What happened.
    pub outcome: ModuleOutcome,
    /// The pipeline's own report (present for `Optimized` and `MemoHit`).
    pub report: Option<PipelineReport>,
    /// Wall time spent on this module (zero for memo hits and skips).
    /// Excluded from [`DesignReport::digest`].
    pub wall: Duration,
}

impl ModuleReport {
    /// A passthrough entry for a module the driver did not change.
    pub fn untouched(module: &Module) -> Self {
        let cells = module.live_cell_count();
        ModuleReport {
            name: module.name.clone(),
            cells_before: cells,
            cells_after: cells,
            outcome: ModuleOutcome::Untouched,
            report: None,
            wall: Duration::ZERO,
        }
    }

    /// Clones this (representative) report for a structurally identical
    /// module named `name`. Only an actually *optimized* representative
    /// yields a `MemoHit`; a skipped, timed-out or untouched one
    /// replicates its own outcome so report consumers see the real
    /// reason nothing ran.
    pub fn as_memo_hit(&self, name: String, of: String) -> Self {
        let outcome = match &self.outcome {
            ModuleOutcome::Optimized | ModuleOutcome::MemoHit { .. } => {
                ModuleOutcome::MemoHit { of }
            }
            other => other.clone(),
        };
        ModuleReport {
            name,
            cells_before: self.cells_before,
            cells_after: self.cells_after,
            outcome,
            report: self.report.clone(),
            wall: Duration::ZERO,
        }
    }

    /// `Some(true)` when this module was verified equivalent, `Some(false)`
    /// when verification refuted or gave up, `None` when it never ran.
    pub fn verified_equivalent(&self) -> Option<bool> {
        self.report
            .as_ref()
            .and_then(|r| r.equivalence.as_ref())
            .map(|e| *e == EquivResult::Equivalent)
    }

    fn to_json(&self, include_timing: bool) -> Json {
        let mut obj = Json::object();
        obj.set("name", Json::Str(self.name.clone()));
        obj.set("outcome", Json::Str(self.outcome.tag().to_string()));
        match &self.outcome {
            ModuleOutcome::MemoHit { of } => {
                obj.set("memo_of", Json::Str(of.clone()));
            }
            ModuleOutcome::SkippedTooLarge { limit } => {
                obj.set("cell_limit", Json::UInt(*limit as u64));
            }
            ModuleOutcome::TimedOut { budget } => {
                obj.set("budget_ms", Json::UInt(budget.as_millis() as u64));
            }
            ModuleOutcome::Poisoned { message, backtrace } => {
                // The message is deterministic (it only ever appears when
                // a fail-point or a genuinely buggy pass fired) and rides
                // in the digest so chaos tests can pin it; the backtrace
                // carries addresses and stays timing-only.
                obj.set("panic", Json::Str(message.clone()));
                if include_timing {
                    obj.set("panic_backtrace", Json::Str(backtrace.clone()));
                }
            }
            _ => {}
        }
        obj.set("cells_before", Json::UInt(self.cells_before as u64));
        obj.set("cells_after", Json::UInt(self.cells_after as u64));
        if let Some(r) = &self.report {
            obj.set("area_before", Json::UInt(r.area_before as u64));
            obj.set("area_after", Json::UInt(r.area_after as u64));
            obj.set("reduction", Json::Float(r.reduction()));
            obj.set("baseline_rewrites", Json::UInt(r.baseline_rewrites as u64));
            obj.set("sat_rewrites", Json::UInt(r.sat_rewrites as u64));
            // cache-invariant counters: pure functions of the input no
            // matter which layer answers, safe for the digest the CI
            // warm-start gate pins against a cold run
            let mut sat = Json::object();
            sat.set("queries", Json::UInt(r.sat_stats.queries as u64));
            sat.set("by_inference", Json::UInt(r.sat_stats.by_inference as u64));
            sat.set("unreachable", Json::UInt(r.sat_stats.unreachable as u64));
            sat.set(
                "gates_before_prune",
                Json::UInt(r.sat_stats.gates_before_prune as u64),
            );
            sat.set(
                "gates_after_prune",
                Json::UInt(r.sat_stats.gates_after_prune as u64),
            );
            if include_timing {
                // layer attribution shifts with scheduling once the
                // shared bank is on, and with warm-start state once a
                // knowledge file is loaded; solver counters likewise
                sat.set("funnel", counters_json(&funnel_counters(&r.sat_stats)));
                sat.set("funnel_hist", funnel_hist_json(&r.sat_stats.profile));
                sat.set("solver", solver_json(&r.sat_stats));
            }
            obj.set("sat_stats", sat);
            let mut rb = Json::object();
            rb.set("candidates", Json::UInt(r.rebuild_stats.candidates as u64));
            rb.set("rebuilt", Json::UInt(r.rebuild_stats.rebuilt as u64));
            rb.set(
                "muxes_removed",
                Json::UInt(r.rebuild_stats.muxes_removed as u64),
            );
            rb.set(
                "muxes_added",
                Json::UInt(r.rebuild_stats.muxes_added as u64),
            );
            rb.set("eqs_freed", Json::UInt(r.rebuild_stats.eqs_freed as u64));
            obj.set("rebuild_stats", rb);
            obj.set("cells_cleaned", Json::UInt(r.cells_cleaned as u64));
            obj.set(
                "equivalence",
                match &r.equivalence {
                    None => Json::Null,
                    Some(EquivResult::Equivalent) => Json::Str("equivalent".into()),
                    Some(EquivResult::NotEquivalent { output, bit, .. }) => {
                        let mut o = Json::object();
                        o.set("verdict", Json::Str("not_equivalent".into()));
                        o.set("output", Json::Str(output.clone()));
                        o.set("bit", Json::UInt(*bit as u64));
                        o
                    }
                    Some(EquivResult::Unknown { output, bit }) => {
                        let mut o = Json::object();
                        o.set("verdict", Json::Str("unknown".into()));
                        o.set("output", Json::Str(output.clone()));
                        o.set("bit", Json::UInt(*bit as u64));
                        o
                    }
                },
            );
        }
        if include_timing {
            obj.set("wall_us", Json::UInt(self.wall.as_micros() as u64));
        }
        obj
    }
}

/// The driver's aggregate result over a whole [`smartly_netlist::Design`],
/// in stable module order.
#[derive(Clone, Debug)]
pub struct DesignReport {
    /// Level the run used.
    pub level: OptLevel,
    /// Worker threads the pool actually ran with.
    pub jobs: usize,
    /// Per-module entries, in the design's module order.
    pub modules: Vec<ModuleReport>,
    /// Total wall time for the whole design (excluded from
    /// [`DesignReport::digest`]).
    pub wall: Duration,
    /// Telemetry of the design-level shared knowledge base, when one was
    /// attached (excluded from [`DesignReport::digest`]: fill order and
    /// hit attribution depend on worker scheduling).
    pub knowledge: Option<KnowledgeStats>,
    /// Persistent knowledge-file counters, when the run was attached to
    /// a [`crate::persist::KnowledgeState`] (excluded from the digest:
    /// every field depends on warm-start state, and warm digests must
    /// match cold ones byte-for-byte). `entries_written` stays 0 until
    /// the caller saves the store and records the result.
    pub kb: Option<KbReport>,
    /// Merged span trace, present when the run enabled
    /// [`crate::DriverOptions::trace`]. A separate artifact: it is
    /// exported via [`crate::trace::chrome_trace_json`], never embedded
    /// in the report JSON, and never part of [`DesignReport::digest`].
    pub trace: Option<Trace>,
}

impl DesignReport {
    /// Builds the aggregate from per-module entries.
    pub fn aggregate(
        level: OptLevel,
        jobs: usize,
        modules: Vec<ModuleReport>,
        wall: Duration,
    ) -> Self {
        DesignReport {
            level,
            jobs,
            modules,
            wall,
            knowledge: None,
            kb: None,
            trace: None,
        }
    }

    /// Sum of AIG areas before optimization (modules with reports only).
    pub fn area_before(&self) -> usize {
        self.modules
            .iter()
            .filter_map(|m| m.report.as_ref())
            .map(|r| r.area_before)
            .sum()
    }

    /// Sum of AIG areas after optimization.
    pub fn area_after(&self) -> usize {
        self.modules
            .iter()
            .filter_map(|m| m.report.as_ref())
            .map(|r| r.area_after)
            .sum()
    }

    /// Fractional area reduction over the whole design.
    pub fn reduction(&self) -> f64 {
        let before = self.area_before();
        if before == 0 {
            0.0
        } else {
            1.0 - self.area_after() as f64 / before as f64
        }
    }

    /// Number of memo-cache hits.
    pub fn memo_hits(&self) -> usize {
        self.modules
            .iter()
            .filter(|m| matches!(m.outcome, ModuleOutcome::MemoHit { .. }))
            .count()
    }

    /// Number of modules whose optimization panicked and was isolated.
    pub fn poisoned(&self) -> usize {
        self.modules
            .iter()
            .filter(|m| matches!(m.outcome, ModuleOutcome::Poisoned { .. }))
            .count()
    }

    /// `Some(true)` when every verified module proved equivalent,
    /// `Some(false)` if any refuted/unknown, `None` when verification
    /// never ran.
    pub fn all_equivalent(&self) -> Option<bool> {
        let verdicts: Vec<bool> = self
            .modules
            .iter()
            .filter_map(ModuleReport::verified_equivalent)
            .collect();
        if verdicts.is_empty() {
            None
        } else {
            Some(verdicts.into_iter().all(|v| v))
        }
    }

    /// Sum of per-module SAT-pass stats over actually optimized modules
    /// (memo hits share their representative's report and would
    /// double-count).
    pub fn sat_totals(&self) -> SatPassStats {
        let mut total = SatPassStats::default();
        for m in &self.modules {
            if matches!(m.outcome, ModuleOutcome::Optimized) {
                if let Some(r) = &m.report {
                    total.absorb(&r.sat_stats);
                }
            }
        }
        total
    }

    /// Full machine-readable report, including wall times.
    pub fn to_json(&self) -> Json {
        self.json_inner(true)
    }

    /// A canonical, timing-free rendering: two runs over the same design
    /// at the same options produce byte-identical digests regardless of
    /// `jobs` (the determinism contract the integration tests pin down).
    pub fn digest(&self) -> String {
        self.json_inner(false).render()
    }

    fn json_inner(&self, include_timing: bool) -> Json {
        let mut obj = Json::object();
        obj.set("level", Json::Str(self.level.name().to_string()));
        obj.set(
            "modules",
            Json::Array(
                self.modules
                    .iter()
                    .map(|m| m.to_json(include_timing))
                    .collect(),
            ),
        );
        obj.set("area_before", Json::UInt(self.area_before() as u64));
        obj.set("area_after", Json::UInt(self.area_after() as u64));
        obj.set("reduction", Json::Float(self.reduction()));
        obj.set("memo_hits", Json::UInt(self.memo_hits() as u64));
        obj.set(
            "all_equivalent",
            match self.all_equivalent() {
                None => Json::Null,
                Some(v) => Json::Bool(v),
            },
        );
        if include_timing {
            obj.set("jobs", Json::UInt(self.jobs as u64));
            obj.set("wall_us", Json::UInt(self.wall.as_micros() as u64));
            obj.set("modules_poisoned", Json::UInt(self.poisoned() as u64));
            if let Some(k) = &self.knowledge {
                let mut kb = Json::object();
                kb.set("shapes", Json::UInt(k.shapes as u64));
                kb.set("published", Json::UInt(k.published));
                kb.set("hits", Json::UInt(k.hits));
                kb.set("disk_hits", Json::UInt(k.disk_hits));
                kb.set("misses", Json::UInt(k.misses));
                kb.set("evictions", Json::UInt(k.evictions));
                obj.set("knowledge", kb);
            }
            if let Some(k) = &self.kb {
                obj.set("kb", kb_json(k));
            }
        }
        obj
    }
}

/// The query-funnel attribution counters as one insertion-ordered
/// registry: a single registration point defines both the key names and
/// the key order, and every renderer (module timing JSON, corpus
/// `query_funnel` block, verbose human output) iterates the same
/// registry instead of hand-threading field lists.
pub(crate) fn funnel_counters(s: &SatPassStats) -> Counters {
    let mut c = Counters::new();
    c.add("by_memo", s.by_memo as u64)
        .add("memo_carryover", s.memo_carryover as u64)
        .add("memo_invalidated", s.memo_invalidated as u64)
        .add("by_disk_verdict", s.by_disk_verdict as u64)
        .add("verdicts_published", s.verdicts_published as u64)
        .add("by_cex", s.by_cex as u64)
        .add("by_shared_cex", s.by_shared_cex as u64)
        .add("by_prefilter", s.by_prefilter as u64)
        .add("prefilter_rounds", s.prefilter_rounds as u64)
        .add("by_sim", s.by_sim as u64)
        .add("by_sat", s.by_sat as u64)
        .add("bank_evictions", s.bank_evictions as u64);
    c
}

/// The CDCL solver's flat counters as a registry (the nested
/// `rephase_kind` breakdown stays structural in [`solver_json`]).
pub(crate) fn solver_counters(s: &SatPassStats) -> Counters {
    let mut c = Counters::new();
    c.add("conflicts", s.solver_conflicts)
        .add("propagations", s.solver_propagations)
        .add("learnts", s.solver_learnts)
        .add("lbd_core", s.solver_lbd_core)
        .add("reduces", s.solver_reduces)
        .add("arena_gcs", s.solver_arena_gcs)
        .add("rephases", s.solver_rephases)
        .add("deadline_checks", s.solver_deadline_checks)
        .add("ema_forced", s.solver_ema_forced)
        .add("ema_blocked", s.solver_ema_blocked)
        .add("vivified_clauses", s.solver_vivified_clauses)
        .add("vivified_lits", s.solver_vivified_lits)
        .add("subsumed", s.solver_subsumed)
        .add("strengthened", s.solver_strengthened)
        .add("chrono_backjumps", s.solver_chrono_backjumps)
        .add("promoted", s.solver_promoted);
    c
}

/// Renders a counter registry as a JSON object in registration order.
pub(crate) fn counters_json(c: &Counters) -> Json {
    let mut obj = Json::object();
    for (name, value) in c.iter() {
        obj.set(name, Json::UInt(value));
    }
    obj
}

/// Renders one log2-bucketed histogram: total count/sum plus the
/// non-empty buckets as `[bucket_floor, count]` pairs. Empty histograms
/// render with an empty bucket list so the key set stays stable.
pub(crate) fn hist_json(h: &Histogram) -> Json {
    let mut obj = Json::object();
    obj.set("count", Json::UInt(h.count()));
    obj.set("sum", Json::UInt(h.sum()));
    obj.set(
        "buckets",
        Json::Array(
            h.nonzero_buckets()
                .into_iter()
                .map(|(floor, count)| Json::Array(vec![Json::UInt(floor), Json::UInt(count)]))
                .collect(),
        ),
    );
    obj
}

/// Renders the always-on latency profile: one latency histogram per
/// funnel layer (all eight keys present, empty or not, so the timing
/// schema is stable) plus the per-SAT-call work histograms.
pub(crate) fn funnel_hist_json(p: &FunnelProfile) -> Json {
    let mut layers = Json::object();
    for layer in Layer::ALL {
        layers.set(layer.name(), hist_json(&p.latency_by_layer[layer.index()]));
    }
    let mut sat_call = Json::object();
    sat_call.set("us", hist_json(&p.sat_call_us));
    sat_call.set("propagations", hist_json(&p.sat_call_propagations));
    sat_call.set("conflicts", hist_json(&p.sat_call_conflicts));
    let mut obj = Json::object();
    obj.set("latency_us", layers);
    obj.set("sat_call", sat_call);
    obj
}

/// Renders the CDCL solver counter block (timing JSON only: the solver's
/// work profile shifts with whatever the cache layers absorb, even
/// though its conclusive verdicts never do).
pub(crate) fn solver_json(s: &SatPassStats) -> Json {
    let mut solver = counters_json(&solver_counters(s));
    let mut kinds = Json::object();
    kinds.set("best", Json::UInt(s.solver_rephase_best));
    kinds.set("inverted", Json::UInt(s.solver_rephase_inverted));
    kinds.set("original", Json::UInt(s.solver_rephase_original));
    solver.set("rephase_kind", kinds);
    solver.set("resets", Json::UInt(s.solver_resets as u64));
    solver
}

/// Renders the persistent-knowledge counter block (timing JSON only).
pub(crate) fn kb_json(k: &KbReport) -> Json {
    let mut kb = Json::object();
    kb.set(
        "kb_loaded",
        Json::UInt((k.loaded_shapes + k.loaded_verdicts) as u64),
    );
    kb.set("kb_loaded_shapes", Json::UInt(k.loaded_shapes as u64));
    kb.set("kb_loaded_verdicts", Json::UInt(k.loaded_verdicts as u64));
    kb.set("kb_disk_hits", Json::UInt(k.disk_hits));
    kb.set("kb_stale_rejected", Json::Bool(k.stale_rejected));
    kb.set("kb_load_failed", Json::Bool(k.load_failed));
    kb.set("kb_load_detail", Json::Str(k.detail.clone()));
    kb.set("kb_entries_written", Json::UInt(k.entries_written as u64));
    kb.set("kb_save_failed", Json::Bool(k.save_failed));
    kb.set("kb_save_retries", Json::UInt(k.save_retries));
    kb
}

impl DesignReport {
    /// Human rendering at an explicit verbosity. `Display` delegates
    /// here with [`Verbosity::Normal`]; `--quiet` drops the per-module
    /// lines and `-v` appends funnel/solver/knowledge counter lines.
    pub fn render_human(&self, verbosity: Verbosity) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "design: {} modules, level {}, {} jobs, {:.1} ms",
            self.modules.len(),
            self.level.name(),
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
        )
        .expect("write");
        if verbosity != Verbosity::Quiet {
            for m in &self.modules {
                let verdict = match m.verified_equivalent() {
                    Some(true) => " [equiv]",
                    Some(false) => " [NOT EQUIV]",
                    None => "",
                };
                match (&m.outcome, &m.report) {
                    (ModuleOutcome::Poisoned { message, .. }, _) => writeln!(
                        out,
                        "  {:<24} poisoned: {message} (netlist restored)",
                        m.name
                    ),
                    (ModuleOutcome::MemoHit { of }, Some(r)) => writeln!(
                        out,
                        "  {:<24} memo({of}): area {} -> {}{verdict}",
                        m.name, r.area_before, r.area_after
                    ),
                    (_, Some(r)) => writeln!(
                        out,
                        "  {:<24} area {} -> {} ({:.2}%){verdict} in {:.1} ms",
                        m.name,
                        r.area_before,
                        r.area_after,
                        100.0 * r.reduction(),
                        m.wall.as_secs_f64() * 1e3,
                    ),
                    (outcome, None) => writeln!(out, "  {:<24} {}", m.name, outcome.tag()),
                }
                .expect("write");
            }
        }
        if verbosity == Verbosity::Verbose {
            let totals = self.sat_totals();
            write!(out, "funnel:").expect("write");
            for (name, value) in funnel_counters(&totals).iter() {
                write!(out, " {name}={value}").expect("write");
            }
            writeln!(out).expect("write");
            write!(out, "solver:").expect("write");
            for (name, value) in solver_counters(&totals).iter() {
                write!(out, " {name}={value}").expect("write");
            }
            writeln!(out).expect("write");
            if let Some(k) = &self.knowledge {
                writeln!(
                    out,
                    "knowledge: shapes={} published={} hits={} disk_hits={} misses={} evictions={}",
                    k.shapes, k.published, k.hits, k.disk_hits, k.misses, k.evictions
                )
                .expect("write");
            }
            if let Some(k) = &self.kb {
                writeln!(out, "{}", kb_human_line(k)).expect("write");
            }
        }
        write!(
            out,
            "total AIG area {} -> {} ({:.2}% reduction), {} memo hits",
            self.area_before(),
            self.area_after(),
            100.0 * self.reduction(),
            self.memo_hits(),
        )
        .expect("write");
        // fault visibility in the default human output, not just the
        // timing JSON: a run that isolated panics must say so even
        // under --quiet, where the per-module "poisoned:" lines are
        // suppressed
        let poisoned = self.poisoned();
        if poisoned > 0 {
            write!(out, ", {poisoned} poisoned").expect("write");
        }
        out
    }
}

/// One-line human rendering of the persistent-knowledge counters,
/// shared by `smartly opt -v` and `smartly stats`.
pub(crate) fn kb_human_line(k: &KbReport) -> String {
    format!(
        "kb: loaded={}+{} disk_hits={} entries_written={} stale_rejected={} load_failed={} \
         save_failed={} save_retries={}{}",
        k.loaded_shapes,
        k.loaded_verdicts,
        k.disk_hits,
        k.entries_written,
        k.stale_rejected,
        k.load_failed,
        k.save_failed,
        k.save_retries,
        if k.detail.is_empty() {
            String::new()
        } else {
            format!(" ({})", k.detail)
        }
    )
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human(Verbosity::Normal))
    }
}
