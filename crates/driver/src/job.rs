//! The job-execution seam: one entry point from Verilog source to an
//! optimized design, its report, and its digest.
//!
//! Both front doors of the system — the one-shot `smartly opt` command
//! and the long-lived `smartly serve` daemon — run jobs through
//! [`optimize_source`]. That is the whole digest-parity argument: a job
//! submitted over the daemon's socket executes byte-for-byte the same
//! compile → [`optimize_design`] → digest path as the CLI, so the
//! service cannot drift from the batch tool. The acceptance gate
//! (`tests/serve_e2e.rs` and the CI serve-smoke step) compares the two
//! digests with `cmp`; this module is why that comparison is a
//! tautology rather than a hope.

use crate::engine::{optimize_design, DriverOptions};
use crate::report::DesignReport;
use crate::{emit_design, DriverError};

/// Everything one optimization job produces.
#[derive(Debug)]
pub struct JobOutput {
    /// The aggregate report (timing JSON, counters, trace if enabled).
    pub report: DesignReport,
    /// The optimized design rendered back to structural Verilog.
    pub verilog: String,
    /// The timing-free digest — [`DesignReport::digest`], the artifact
    /// the determinism gates `cmp`. Captured here so callers holding
    /// only a `JobOutput` (the daemon's journal) persist exactly the
    /// string the CLI would have written.
    pub digest: String,
}

/// Compiles `source` and optimizes every module of the design under
/// `opts`, returning the report, the emitted Verilog, and the digest.
///
/// # Errors
///
/// Frontend failures surface as [`DriverError::Verilog`], pipeline
/// failures as [`DriverError::Netlist`] — in both cases nothing
/// half-optimized escapes (the design never leaves this function).
pub fn optimize_source(source: &str, opts: &DriverOptions) -> Result<JobOutput, DriverError> {
    let mut design = smartly_verilog::compile(source)?;
    let report = optimize_design(&mut design, opts)?;
    let verilog = emit_design(&design);
    let digest = report.digest();
    Ok(JobOutput {
        report,
        verilog,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module seam (input wire s, input wire [3:0] a,\n\
                       input wire [3:0] b, output reg [3:0] y);\n\
                       always @(*) begin\n\
                       if (s) begin if (s) y = a; else y = b; end else y = b;\n\
                       end\nendmodule\n";

    #[test]
    fn source_seam_matches_the_manual_path() {
        let opts = DriverOptions {
            jobs: 1,
            ..Default::default()
        };
        let job = optimize_source(SRC, &opts).expect("job runs");

        let mut design = smartly_verilog::compile(SRC).expect("compiles");
        let report = optimize_design(&mut design, &opts).expect("driver");
        assert_eq!(job.digest, report.digest(), "digest parity by construction");
        assert_eq!(job.verilog, emit_design(&design));
        assert_eq!(job.report.modules.len(), 1);
    }

    #[test]
    fn frontend_errors_surface_as_verilog_errors() {
        let err = optimize_source("module broken(", &DriverOptions::default())
            .expect_err("parse failure");
        assert!(matches!(err, DriverError::Verilog(_)));
    }
}
