//! Persistent cross-run knowledge: the `smartly.kb` file format and its
//! load/save machinery.
//!
//! PRs 2–3 built a cache hierarchy whose tiers end at process exit
//! (query < sweep < round < design). This module adds the *disk* tier:
//! the design-level [`KnowledgeBase`] (cone-shape signature → packed
//! 64-wide counterexample vectors) and [`DesignVerdictStore`] (canonical
//! query key → conclusive verdict) serialize to a single file, so
//! repeated `smartly opt` invocations over evolving RTL start warm.
//!
//! # Format
//!
//! Everything is little-endian (via [`smartly_sat::codec`]):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SMKB"
//!      4     4  format version (u32)
//!      8     8  cell-kind encoding fingerprint (u64,
//!               smartly_core::subgraph::encoding_fingerprint)
//!     16     8  SAT conflict budget the verdicts were decided under (u64)
//!     24     8  payload length in bytes (u64)
//!     32     8  FNV-1a checksum of the payload (u64)
//!     40     —  payload:
//!               shape_count (u32), then per shape:
//!                 sig u64, width u32, filled u32, cursor u32, hits u64,
//!                 planes: width × u64
//!               verdict_count (u32), then per verdict:
//!                 key_len u32, key: key_len × u64, decision u8
//! ```
//!
//! The header is the whole invalidation story: any mismatch — magic,
//! version, encoding fingerprint, conflict budget — rejects the store
//! as *stale*; a bad length, checksum, or truncated payload rejects it
//! as *corrupt*. Both fall back to a cold start: [`load_state`] never
//! errors, it only reports what happened, so a damaged knowledge file
//! can never fail an optimization run.
//!
//! Saves are bounded (`max_entries` per section, hottest shapes and
//! freshest verdicts first) so the file cannot grow without limit
//! across runs, and are **crash-safe**: the store is written to a
//! pid-suffixed sibling temp file, fsynced, read back and compared
//! (catching short or torn writes), renamed over the target, and the
//! parent directory fsynced — with the whole sequence retried under a
//! bounded exponential backoff on IO failure and the temp file removed
//! on every error path. The seams of that sequence are
//! [`smartly_failpoint`] sites (`persist.save.io`,
//! `persist.save.verify`, `persist.save.rename`, `persist.save.reload`)
//! so the chaos suite can inject each failure deterministically.

use crate::knowledge::{DesignVerdictStore, KnowledgeBase, ShapeRecord};
use smartly_core::decide::Decision;
use smartly_core::subgraph::encoding_fingerprint;
use smartly_failpoint as fail;
use smartly_sat::codec::{fnv64, ByteReader, ByteWriter};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// File magic: "SMKB".
pub const MAGIC: [u8; 4] = *b"SMKB";

/// Current format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// The header fields a store must match to be loadable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreKey {
    /// Fingerprint of the query-key encoding scheme.
    pub kind_fingerprint: u64,
    /// The SAT conflict budget verdicts were decided under. Conclusive
    /// verdicts are proofs and would stay valid under any budget, but
    /// *which* queries resolve conclusively is budget-dependent — equal
    /// budgets keep a warm run's decision stream aligned with the cold
    /// run's, which is what the CI determinism gate pins.
    pub conflict_budget: u64,
}

impl StoreKey {
    /// The key for this build's encoding and the given budget.
    pub fn current(conflict_budget: u64) -> Self {
        StoreKey {
            kind_fingerprint: encoding_fingerprint(),
            conflict_budget,
        }
    }
}

/// What loading a knowledge file did (all-zero for a cold start).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Cone shapes seeded into the bank.
    pub loaded_shapes: usize,
    /// Verdicts seeded into the store's disk generation.
    pub loaded_verdicts: usize,
    /// The file existed but its header did not match (version, encoding
    /// fingerprint, or conflict budget): the whole store was dropped.
    pub stale_rejected: bool,
    /// The file was unreadable, truncated, or failed its checksum.
    pub load_failed: bool,
    /// Human-readable reason for a cold start (empty when warm or when
    /// no file existed).
    pub detail: String,
}

/// What a bounded save wrote.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Shape records written.
    pub shapes_written: usize,
    /// Verdict records written.
    pub verdicts_written: usize,
    /// Write-verify-rename attempts that failed before the save
    /// succeeded (0 on a clean first attempt).
    pub retries: u64,
}

impl SaveReport {
    /// Total records in the file.
    pub fn entries_written(&self) -> usize {
        self.shapes_written + self.verdicts_written
    }
}

/// The knowledge-file counters surfaced in the timing JSON (never the
/// digest: every field depends on warm-start state, and a warm run must
/// digest byte-identically to a cold one).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KbReport {
    /// Shapes + verdicts loaded from the file.
    pub loaded_shapes: usize,
    /// Verdicts loaded from the file.
    pub loaded_verdicts: usize,
    /// Queries answered from disk-loaded state this run: verdict-store
    /// disk hits plus counterexample-bank hits on loaded shapes.
    /// Scheduling-independent for the verdict share (the served
    /// generation is immutable); the bank share can shift attribution
    /// with scheduling like every other bank counter.
    pub disk_hits: u64,
    /// Header mismatch dropped the store (cold start).
    pub stale_rejected: bool,
    /// Read/parse/checksum failure dropped the store (cold start).
    pub load_failed: bool,
    /// Why the store was dropped, when it was.
    pub detail: String,
    /// Records written back on save (0 until a save happens).
    pub entries_written: usize,
    /// The save was attempted and failed even after retries (the run
    /// itself still succeeds: persistence degrades, results do not).
    pub save_failed: bool,
    /// Failed write-verify-rename attempts absorbed by the retry loop.
    pub save_retries: u64,
}

/// The warm-startable knowledge attached to one design run: the shared
/// counterexample bank, the verdict store, and how loading went.
#[derive(Debug)]
pub struct KnowledgeState {
    /// The design-level counterexample bank (possibly pre-seeded).
    pub bank: Arc<KnowledgeBase>,
    /// The design-level verdict store (possibly with a disk generation).
    pub verdicts: Arc<DesignVerdictStore>,
    /// What the load did.
    pub load: LoadReport,
}

impl KnowledgeState {
    /// A cold state: empty bank and store.
    pub fn cold(bank_capacity: usize) -> Self {
        KnowledgeState {
            bank: Arc::new(KnowledgeBase::new(bank_capacity)),
            verdicts: Arc::new(DesignVerdictStore::new()),
            load: LoadReport::default(),
        }
    }

    /// The timing-JSON counter block for this state, with live hit
    /// counters sampled now (`entries_written` stays 0 until the caller
    /// saves).
    pub fn kb_report(&self) -> KbReport {
        KbReport {
            loaded_shapes: self.load.loaded_shapes,
            loaded_verdicts: self.load.loaded_verdicts,
            disk_hits: self.bank.stats().disk_hits + self.verdicts.stats().disk_hits,
            stale_rejected: self.load.stale_rejected,
            load_failed: self.load.load_failed,
            detail: self.load.detail.clone(),
            entries_written: 0,
            save_failed: false,
            save_retries: 0,
        }
    }
}

/// Why a decode rejected the file.
#[derive(Clone, Debug, PartialEq, Eq)]
enum DecodeError {
    /// Well-formed but from an incompatible configuration.
    Stale(String),
    /// Damaged: truncated, checksum mismatch, or malformed records.
    Corrupt(String),
}

fn decision_to_u8(d: Decision) -> Option<u8> {
    match d {
        Decision::Const(false) => Some(0),
        Decision::Const(true) => Some(1),
        Decision::Unreachable => Some(2),
        Decision::Unknown => Some(3),
        // Skipped is not a verdict; the store never accepts one
        Decision::Skipped => None,
    }
}

fn decision_from_u8(b: u8) -> Option<Decision> {
    match b {
        0 => Some(Decision::Const(false)),
        1 => Some(Decision::Const(true)),
        2 => Some(Decision::Unreachable),
        3 => Some(Decision::Unknown),
        _ => None,
    }
}

/// Serializes the bounded store: at most `max_entries` shapes (hottest
/// first) and `max_entries` verdicts (freshest first).
fn encode(shapes: &[ShapeRecord], verdicts: &[(Box<[u64]>, Decision)], key: &StoreKey) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_u32(shapes.len() as u32);
    for s in shapes {
        payload.put_u64(s.sig);
        payload.put_u32(s.width);
        payload.put_u32(s.filled);
        payload.put_u32(s.cursor);
        payload.put_u64(s.hits);
        payload.put_u64s(&s.planes);
    }
    payload.put_u32(verdicts.len() as u32);
    for (k, d) in verdicts {
        payload.put_u32(k.len() as u32);
        payload.put_u64s(k);
        payload.put_u8(decision_to_u8(*d).expect("stores hold no Skipped"));
    }
    let payload = payload.into_bytes();

    let mut out = ByteWriter::new();
    out.put_bytes(&MAGIC);
    out.put_u32(FORMAT_VERSION);
    out.put_u64(key.kind_fingerprint);
    out.put_u64(key.conflict_budget);
    out.put_u64(payload.len() as u64);
    out.put_u64(fnv64(&payload));
    out.put_bytes(&payload);
    out.into_bytes()
}

type DecodedStore = (Vec<ShapeRecord>, Vec<(Box<[u64]>, Decision)>);

fn decode(bytes: &[u8], expect: &StoreKey) -> Result<DecodedStore, DecodeError> {
    let corrupt = |what: &str| DecodeError::Corrupt(what.to_string());
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4).map_err(|_| corrupt("truncated header"))?;
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32().map_err(|_| corrupt("truncated header"))?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::Stale(format!(
            "format version {version} != {FORMAT_VERSION}"
        )));
    }
    let fingerprint = r.u64().map_err(|_| corrupt("truncated header"))?;
    if fingerprint != expect.kind_fingerprint {
        return Err(DecodeError::Stale(
            "cell-kind encoding fingerprint mismatch".to_string(),
        ));
    }
    let budget = r.u64().map_err(|_| corrupt("truncated header"))?;
    if budget != expect.conflict_budget {
        return Err(DecodeError::Stale(format!(
            "conflict budget {budget} != {}",
            expect.conflict_budget
        )));
    }
    let payload_len = r.u64().map_err(|_| corrupt("truncated header"))?;
    let checksum = r.u64().map_err(|_| corrupt("truncated header"))?;
    if payload_len != r.remaining() as u64 {
        return Err(corrupt("payload length mismatch"));
    }
    let payload = r
        .bytes(payload_len as usize)
        .map_err(|_| corrupt("truncated payload"))?;
    if fnv64(payload) != checksum {
        return Err(corrupt("payload checksum mismatch"));
    }

    let mut p = ByteReader::new(payload);
    let truncated = |_| corrupt("truncated shape records");
    let shape_count = p.u32().map_err(truncated)?;
    let mut shapes = Vec::with_capacity(shape_count.min(1 << 20) as usize);
    for _ in 0..shape_count {
        let sig = p.u64().map_err(truncated)?;
        let width = p.u32().map_err(truncated)?;
        let filled = p.u32().map_err(truncated)?;
        let cursor = p.u32().map_err(truncated)?;
        let hits = p.u64().map_err(truncated)?;
        let planes = p.u64s(width as usize).map_err(truncated)?;
        if filled == 0 || filled > 64 {
            return Err(corrupt("shape with invalid lane count"));
        }
        shapes.push(ShapeRecord {
            sig,
            width,
            filled,
            cursor,
            hits,
            planes,
        });
    }
    let truncated = |_| corrupt("truncated verdict records");
    let verdict_count = p.u32().map_err(truncated)?;
    let mut verdicts = Vec::with_capacity(verdict_count.min(1 << 20) as usize);
    for _ in 0..verdict_count {
        let key_len = p.u32().map_err(truncated)?;
        let key = p.u64s(key_len as usize).map_err(truncated)?;
        let d = p.u8().map_err(truncated)?;
        let d = decision_from_u8(d).ok_or_else(|| corrupt("unknown verdict code"))?;
        verdicts.push((key.into_boxed_slice(), d));
    }
    if p.remaining() != 0 {
        return Err(corrupt("trailing bytes after records"));
    }
    Ok((shapes, verdicts))
}

/// Loads a knowledge file into a fresh [`KnowledgeState`], falling back
/// to a cold state on *any* problem — a missing, stale, or corrupt file
/// is reported in [`KnowledgeState::load`], never an error.
pub fn load_state(path: &Path, expect: &StoreKey, bank_capacity: usize) -> KnowledgeState {
    let mut state = KnowledgeState::cold(bank_capacity);
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // first run: silently cold
            return state;
        }
        Err(e) => {
            state.load.load_failed = true;
            state.load.detail = format!("cannot read {}: {e}", path.display());
            return state;
        }
    };
    match decode(&bytes, expect) {
        Ok((shapes, verdicts)) => {
            // shapes were saved hottest-first; preload in that order so
            // a smaller bank keeps the hot prefix
            let loaded_shapes = shapes.iter().filter(|s| state.bank.preload(s)).count();
            let loaded_verdicts = verdicts.len();
            state.verdicts = Arc::new(DesignVerdictStore::with_disk(verdicts));
            state.load.loaded_shapes = loaded_shapes;
            state.load.loaded_verdicts = loaded_verdicts;
        }
        Err(DecodeError::Stale(why)) => {
            state.load.stale_rejected = true;
            state.load.detail = why;
        }
        Err(DecodeError::Corrupt(why)) => {
            state.load.load_failed = true;
            state.load.detail = why;
        }
    }
    state
}

/// Fail-point site fired before the temp file is written (simulates a
/// full disk or a dead mount).
pub const FP_SAVE_IO: &str = "persist.save.io";
/// Fail-point site that makes the read-back comparison report a torn
/// write.
pub const FP_SAVE_VERIFY: &str = "persist.save.verify";
/// Fail-point site fired instead of the publishing rename.
pub const FP_SAVE_RENAME: &str = "persist.save.rename";
/// Fail-point site that *enables* reload-after-save verification: when
/// armed, the published file is read back and decoded against the save
/// key, failing the save if the store does not round-trip.
pub const FP_SAVE_RELOAD: &str = "persist.save.reload";
/// Fail-point site that makes the retry backoff injectable: checked
/// once per absorbed failure, and when it fires the exponential sleep
/// for that retry is skipped. Chaos tests arm it `always` so walking
/// the full [`SAVE_ATTEMPTS`] ladder costs zero wall-clock — the site's
/// hit count then *is* the number of backoffs the ladder scheduled,
/// which the pinning test asserts.
pub const FP_SAVE_BACKOFF: &str = "persist.save.backoff";

/// Write-verify-rename attempts before a save gives up.
pub const SAVE_ATTEMPTS: u32 = 3;
/// Base backoff between attempts, doubled per retry.
const SAVE_BACKOFF_MS: u64 = 5;

/// One crash-safe publication attempt: write the temp file, fsync it,
/// read it back and compare (a short or torn write must never be
/// renamed into place), rename over the target, fsync the parent
/// directory so the rename itself survives a crash.
fn write_verify_rename(tmp: &Path, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if fail::check(FP_SAVE_IO) {
        return Err(std::io::Error::other("failpoint: injected save IO error"));
    }
    let mut f = std::fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    let back = std::fs::read(tmp)?;
    if back != bytes || fail::check(FP_SAVE_VERIFY) {
        return Err(std::io::Error::other(
            "temp-file read-back mismatch (torn write)",
        ));
    }
    if fail::check(FP_SAVE_RENAME) {
        return Err(std::io::Error::other("failpoint: injected rename error"));
    }
    std::fs::rename(tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Fsyncs the directory holding `path`, making the rename durable.
/// Best-effort: a filesystem that cannot sync directories degrades to
/// the pre-fsync guarantee (complete-or-old file, possibly lost on
/// power failure), which is never worse than not trying.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) {}

/// Writes the state back to `path`, bounded to `max_entries` shapes and
/// `max_entries` verdicts (hottest shapes, freshest verdicts).
///
/// The write is crash-safe: temp file → fsync → read-back verify →
/// rename → parent-directory fsync, so a concurrent reader (or a reader
/// after a crash at any point) sees either the old store or the new
/// one, never a torn write. IO failures are retried up to
/// [`SAVE_ATTEMPTS`] times under exponential backoff —
/// [`SaveReport::retries`] counts the absorbed failures — and the
/// pid-suffixed temp file is removed on every error path.
///
/// # Errors
///
/// Propagates the last filesystem error once retries are exhausted
/// (unlike loading, failing to *save* is worth surfacing: the user
/// asked to persist knowledge and nothing was persisted). Callers that
/// must not die on a failed save — the CLI, a long-lived service —
/// degrade by reporting [`KbReport::save_failed`] instead of exiting.
pub fn save_state(
    path: &Path,
    state: &KnowledgeState,
    key: &StoreKey,
    max_entries: usize,
) -> std::io::Result<SaveReport> {
    let mut shapes = state.bank.export();
    shapes.truncate(max_entries);
    let mut verdicts = state.verdicts.export();
    verdicts.truncate(max_entries);
    let bytes = encode(&shapes, &verdicts, key);
    // per-process temp name: concurrent *processes* each write their own
    // file and the final rename publishes one complete store, never a
    // torn interleaving through a shared temp path (within one process
    // the CLI saves once, at exit)
    let tmp = path.with_extension(format!("kb.tmp.{}", std::process::id()));
    let mut retries = 0u64;
    let mut attempt = 0u32;
    let result = loop {
        attempt += 1;
        match write_verify_rename(&tmp, path, &bytes) {
            Ok(()) => break Ok(()),
            Err(e) => {
                if attempt >= SAVE_ATTEMPTS {
                    break Err(e);
                }
                retries += 1;
                // injectable backoff: the armed fail point swallows the
                // sleep so chaos tests walk the ladder in microseconds
                if !fail::check(FP_SAVE_BACKOFF) {
                    std::thread::sleep(std::time::Duration::from_millis(
                        SAVE_BACKOFF_MS << (attempt - 1),
                    ));
                }
            }
        }
    };
    if result.is_err() {
        // never leave the pid-suffixed temp file behind on failure
        let _ = std::fs::remove_file(&tmp);
    }
    result?;
    if fail::check(FP_SAVE_RELOAD) {
        let back = std::fs::read(path)?;
        if decode(&back, key).is_err() {
            return Err(std::io::Error::other(
                "reload-after-save verification failed",
            ));
        }
    }
    Ok(SaveReport {
        shapes_written: shapes.len(),
        verdicts_written: verdicts.len(),
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> DecodedStore {
        let shapes = vec![
            ShapeRecord {
                sig: 0xDEAD,
                width: 3,
                filled: 2,
                cursor: 2,
                hits: 7,
                planes: vec![0b01, 0b10, 0b11],
            },
            ShapeRecord {
                sig: 0xBEEF,
                width: 1,
                filled: 64,
                cursor: 70,
                hits: 0,
                planes: vec![u64::MAX],
            },
        ];
        let verdicts: Vec<(Box<[u64]>, Decision)> = vec![
            (vec![1, 2, 3].into(), Decision::Const(true)),
            (vec![4].into(), Decision::Unknown),
            (vec![5, 6].into(), Decision::Unreachable),
        ];
        (shapes, verdicts)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (shapes, verdicts) = sample_store();
        let key = StoreKey::current(2_000);
        let bytes = encode(&shapes, &verdicts, &key);
        let (s2, v2) = decode(&bytes, &key).expect("round trip");
        assert_eq!(s2, shapes);
        assert_eq!(v2, verdicts);
    }

    #[test]
    fn header_mismatches_are_stale_not_corrupt() {
        let (shapes, verdicts) = sample_store();
        let key = StoreKey::current(2_000);
        let bytes = encode(&shapes, &verdicts, &key);

        // version
        let mut v = bytes.clone();
        v[4] ^= 0xFF;
        assert!(matches!(
            decode(&v, &key),
            Err(DecodeError::Stale(why)) if why.contains("format version")
        ));
        // encoding fingerprint
        let mut f = bytes.clone();
        f[8] ^= 0xFF;
        assert!(matches!(
            decode(&f, &key),
            Err(DecodeError::Stale(why)) if why.contains("fingerprint")
        ));
        // conflict budget
        let other = StoreKey::current(5_000);
        assert!(matches!(
            decode(&bytes, &other),
            Err(DecodeError::Stale(why)) if why.contains("conflict budget")
        ));
    }

    #[test]
    fn damage_is_detected_as_corrupt() {
        let (shapes, verdicts) = sample_store();
        let key = StoreKey::current(2_000);
        let bytes = encode(&shapes, &verdicts, &key);

        // truncation at every prefix length must be rejected, not panic
        for cut in [0, 3, 17, 39, 40, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut], &key), Err(DecodeError::Corrupt(_))),
                "prefix of {cut} bytes must be corrupt"
            );
        }
        // a single flipped payload bit fails the checksum
        let mut flipped = bytes.clone();
        let mid = 40 + (bytes.len() - 40) / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            decode(&flipped, &key),
            Err(DecodeError::Corrupt(why)) if why.contains("checksum")
        ));
        // bad magic
        let mut m = bytes.clone();
        m[0] = b'X';
        assert!(matches!(decode(&m, &key), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn load_state_never_errors() {
        let dir = std::env::temp_dir();
        let key = StoreKey::current(2_000);

        // missing file: silently cold
        let missing = dir.join(format!("smartly_kb_missing_{}.kb", std::process::id()));
        let state = load_state(&missing, &key, 16);
        assert_eq!(state.load, LoadReport::default());

        // corrupt file: cold with load_failed
        let corrupt = dir.join(format!("smartly_kb_corrupt_{}.kb", std::process::id()));
        std::fs::write(&corrupt, b"not a knowledge file").unwrap();
        let state = load_state(&corrupt, &key, 16);
        assert!(state.load.load_failed);
        assert!(!state.load.stale_rejected);
        assert_eq!(state.load.loaded_shapes, 0);
        let kb = state.kb_report();
        assert!(kb.load_failed);
        std::fs::remove_file(&corrupt).unwrap();
    }

    #[test]
    fn save_then_load_restores_bank_and_verdicts() {
        let path =
            std::env::temp_dir().join(format!("smartly_kb_roundtrip_{}.kb", std::process::id()));
        let key = StoreKey::current(2_000);
        let state = KnowledgeState::cold(16);
        state.bank.publish(0xAB, &[true, false]);
        use smartly_core::SharedVerdictStore as _;
        state.verdicts.publish(&[10, 20], Decision::Const(false));
        let report = save_state(&path, &state, &key, 1_000).expect("save");
        assert_eq!(report.shapes_written, 1);
        assert_eq!(report.verdicts_written, 1);
        assert_eq!(report.entries_written(), 2);

        let warm = load_state(&path, &key, 16);
        assert_eq!(warm.load.loaded_shapes, 1);
        assert_eq!(warm.load.loaded_verdicts, 1);
        use smartly_core::SharedCexBank as _;
        assert!(warm.bank.lookup(0xAB, 2).is_some());
        assert_eq!(
            warm.verdicts.lookup(&[10, 20]),
            Some(Decision::Const(false))
        );

        // a budget change invalidates the whole store as stale
        let stale = load_state(&path, &StoreKey::current(9_999), 16);
        assert!(stale.load.stale_rejected);
        assert_eq!(stale.load.loaded_shapes, 0);
        assert_eq!(stale.verdicts.lookup(&[10, 20]), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounded_save_keeps_hottest_shapes_and_freshest_verdicts() {
        let path =
            std::env::temp_dir().join(format!("smartly_kb_bounded_{}.kb", std::process::id()));
        let key = StoreKey::current(2_000);
        let state = KnowledgeState::cold(16);
        use smartly_core::{SharedCexBank as _, SharedVerdictStore as _};
        state.bank.publish(1, &[true]);
        state.bank.publish(2, &[true]);
        let _ = state.bank.lookup(2, 1); // shape 2 is the hot one
        state.verdicts.publish(&[1], Decision::Unknown);
        state.verdicts.publish(&[2], Decision::Unknown);

        let report = save_state(&path, &state, &key, 1).expect("save");
        assert_eq!(report.shapes_written, 1);
        assert_eq!(report.verdicts_written, 1);
        let warm = load_state(&path, &key, 16);
        assert!(warm.bank.lookup(2, 1).is_some(), "hot shape survived");
        assert!(warm.bank.lookup(1, 1).is_none(), "cold shape was dropped");
        std::fs::remove_file(&path).unwrap();
    }
}
