//! Corpus runner: drives the public workload suite through the engine at
//! every optimization level and produces a Table-III-style summary plus a
//! machine-readable benchmark artifact.

use crate::engine::{optimize_design, DriverOptions};
use crate::json::Json;
use crate::persist::{KbReport, KnowledgeState};
use crate::report::{funnel_counters, funnel_hist_json, Verbosity};
use crate::DriverError;
use smartly_core::sat_pass::{SatPassStats, SatRedundancyOptions};
use smartly_core::{OptLevel, Pipeline};
use smartly_netlist::Design;
use smartly_telemetry::Trace;
use smartly_workloads::{public_corpus, Scale};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`run_public_corpus`].
#[derive(Clone, Debug)]
pub struct CorpusOptions {
    /// Corpus size (`tiny` for CI, `paper` for full runs, `medium` /
    /// `large` for the conflict-bearing scales).
    pub scale: Scale,
    /// Run only the first `n` circuits of the corpus (`None` = all 10).
    /// CI's Medium smoke uses this to bound wall time; the bound is
    /// stamped into the artifact (digest included) so a bounded digest
    /// never compares equal to a full one by accident.
    pub cases: Option<usize>,
    /// Worker threads (0 = one per CPU); circuits are optimized in
    /// parallel within each level.
    pub jobs: usize,
    /// Verify every optimized circuit against its original.
    pub verify: bool,
    /// Attach the design-level shared knowledge base (the circuits run
    /// as modules of one design per level, so cross-circuit cone shapes
    /// seed each other). On by default; off is the ablation baseline.
    pub share_knowledge: bool,
    /// Warm-start knowledge loaded from a file: one state shared by
    /// every level run and the knowledge bench, so the whole suite
    /// starts warm and accumulates into one store. `None` keeps the
    /// previous behavior (fresh in-process state per level run).
    pub knowledge_state: Option<Arc<KnowledgeState>>,
    /// Record span traces for every level run and both benches into
    /// [`CorpusReport::traces`] (one merged trace per run, named after
    /// it). Purely observational; the digest artifact is unaffected.
    pub trace: bool,
    /// Run the CDCL solver on its fixed Luby restart schedule instead of
    /// the EMA-adaptive controller (ablation baseline; verdicts and the
    /// digest are identical either way).
    pub luby_restarts: bool,
    /// Solver inprocessing (vivification + subsumption at restart
    /// boundaries). On by default; off is the ablation baseline, with a
    /// byte-identical digest.
    pub inprocessing: bool,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            scale: Scale::Tiny,
            cases: None,
            jobs: 0,
            verify: false,
            share_knowledge: true,
            knowledge_state: None,
            trace: false,
            luby_restarts: false,
            inprocessing: true,
        }
    }
}

/// The solver-knob slice of a [`CorpusOptions`] as a pipeline override,
/// shared by the level runs and both benches so every solve in a corpus
/// run sees the same restart/inprocessing configuration.
fn solver_pipeline(opts: &CorpusOptions) -> Pipeline {
    Pipeline {
        sat: SatRedundancyOptions {
            luby_restarts: opts.luby_restarts,
            inprocessing: opts.inprocessing,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Parses a CLI-style scale name (`tiny|small|paper|medium|large`).
pub fn scale_from_str(s: &str) -> Option<Scale> {
    Scale::from_name(s)
}

fn scale_name(s: Scale) -> &'static str {
    s.name()
}

/// One circuit × level measurement.
#[derive(Clone, Debug)]
pub struct LevelResult {
    /// Which level ran.
    pub level: OptLevel,
    /// AIG area after optimization.
    pub area_after: usize,
    /// Wall time for this circuit at this level.
    pub wall: Duration,
    /// Verification verdict when enabled.
    pub equivalent: Option<bool>,
    /// SAT-pass query telemetry (the query-engine funnel's per-layer hit
    /// counts), summed over pipeline rounds.
    pub sat: SatPassStats,
}

/// Per-circuit results across all levels.
#[derive(Clone, Debug)]
pub struct CorpusRow {
    /// Circuit name (Table II/III row).
    pub name: String,
    /// AIG area before any optimization.
    pub area_original: usize,
    /// One entry per level, in [`OptLevel::ALL`] order.
    pub levels: Vec<LevelResult>,
}

impl CorpusRow {
    fn level(&self, level: OptLevel) -> Option<&LevelResult> {
        self.levels.iter().find(|l| l.level == level)
    }

    /// Reduction of `level` relative to the Yosys baseline result (the
    /// paper's Table III metric), when both are present.
    pub fn reduction_vs_baseline(&self, level: OptLevel) -> Option<f64> {
        let base = self.level(OptLevel::Baseline)?.area_after;
        let ours = self.level(level)?.area_after;
        if base == 0 {
            None
        } else {
            Some(1.0 - ours as f64 / base as f64)
        }
    }
}

/// Results of the multi-module knowledge-bench design (near-miss
/// parameter variants exercising the design-level shared bank; see
/// [`smartly_workloads::knowledge_probes`]).
#[derive(Clone, Debug)]
pub struct KnowledgeBench {
    /// Modules in the probe design.
    pub modules: usize,
    /// Whether the shared bank was attached for this run.
    pub shared: bool,
    /// Decide queries across all modules.
    pub queries: usize,
    /// Queries refuted by replaying sibling modules' vectors.
    pub by_shared_cex: usize,
    /// Models published to the bank.
    pub published: u64,
    /// Bank lookups that returned vectors.
    pub hits: u64,
    /// Total AIG area after optimization (scheduling-independent).
    pub area_after: usize,
    /// Wall time for the whole probe design.
    pub wall: Duration,
}

/// Results of the CDCL stress design (adder-commutativity miter selects
/// forcing real conflict-driven search; see
/// [`smartly_workloads::solver_stress`]). Timing artifact only — every
/// counter is solver-work attribution, which cache warm-state shifts.
#[derive(Clone, Debug)]
pub struct SolverBench {
    /// Cones (= queries that must reach the solver when cold).
    pub cones: usize,
    /// Decide queries across the stress design.
    pub queries: usize,
    /// Aggregated SAT-pass telemetry (solver counters live here).
    pub sat: SatPassStats,
    /// Total AIG area after optimization (scheduling-independent).
    pub area_after: usize,
    /// Wall time for the stress design.
    pub wall: Duration,
}

/// The whole suite's results.
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Circuit bound the run was truncated to, when one was set.
    pub cases: Option<usize>,
    /// Per-circuit rows, in corpus order.
    pub rows: Vec<CorpusRow>,
    /// The multi-module shared-bank exercise (timing artifact only; its
    /// attribution counters depend on worker scheduling).
    pub knowledge_bench: Option<KnowledgeBench>,
    /// The CDCL stress exercise (timing artifact only; CI asserts its
    /// `reduces`/`lbd_core` counters are non-zero on a cold run).
    pub solver_bench: Option<SolverBench>,
    /// Persistent knowledge-file counters, when the suite ran against a
    /// [`KnowledgeState`] (timing artifact only: every field depends on
    /// warm-start state and warm digests must match cold ones).
    pub kb: Option<KbReport>,
    /// Modules whose optimization panicked and was isolated, summed over
    /// every level run and both benches (timing artifact only: non-zero
    /// exclusively when a fail-point or a genuinely buggy pass fired).
    pub modules_poisoned: usize,
    /// Span traces collected when [`CorpusOptions::trace`] was on: one
    /// per level run (`corpus-<level>`) plus the two benches. Written to
    /// separate files by `smartly corpus --trace-dir`, never embedded in
    /// the JSON artifact.
    pub traces: Vec<Trace>,
}

/// Runs the public corpus at every [`OptLevel`] with the engine's
/// parallel pool (circuits are modules of one design per level).
///
/// # Errors
///
/// Returns [`DriverError`] when a generated circuit fails to compile
/// (a workloads bug) or a pipeline hits a netlist error.
pub fn run_public_corpus(opts: &CorpusOptions) -> Result<CorpusReport, DriverError> {
    let mut cases = public_corpus(opts.scale);
    if let Some(n) = opts.cases {
        cases.truncate(n);
    }
    let mut rows: Vec<CorpusRow> = cases
        .iter()
        .map(|c| CorpusRow {
            name: c.name.clone(),
            area_original: 0,
            levels: Vec::new(),
        })
        .collect();

    // Compile each circuit once; every level starts from a clone of the
    // pristine module (4x cheaper than re-running the frontend per level).
    let pristine: Vec<smartly_netlist::Module> = cases
        .iter()
        .map(|c| c.compile())
        .collect::<Result<_, _>>()?;

    let mut traces: Vec<Trace> = Vec::new();
    let mut modules_poisoned = 0usize;
    for level in OptLevel::ALL {
        let mut design = Design::from_modules(pristine.clone());
        let driver_opts = DriverOptions {
            level,
            jobs: opts.jobs,
            verify: opts.verify,
            share_knowledge: opts.share_knowledge,
            knowledge_state: opts.knowledge_state.clone(),
            trace: opts.trace,
            // circuits are all distinct; skip the hashing pass
            memoize: false,
            pipeline: solver_pipeline(opts),
            ..Default::default()
        };
        let mut report = optimize_design(&mut design, &driver_opts)?;
        modules_poisoned += report.poisoned();
        if let Some(mut t) = report.trace.take() {
            t.name = format!("corpus-{}", level.name());
            traces.push(t);
        }
        for (row, module) in rows.iter_mut().zip(&report.modules) {
            if let Some(r) = &module.report {
                row.area_original = r.area_before;
                row.levels.push(LevelResult {
                    level,
                    area_after: r.area_after,
                    wall: module.wall,
                    equivalent: module.verified_equivalent(),
                    sat: r.sat_stats,
                });
            }
        }
    }
    let (knowledge_bench, kb_trace, kb_poisoned) = run_knowledge_bench(opts)?;
    traces.extend(kb_trace);
    modules_poisoned += kb_poisoned;
    let (solver_bench, sb_trace, sb_poisoned) = run_solver_bench(opts)?;
    traces.extend(sb_trace);
    modules_poisoned += sb_poisoned;
    Ok(CorpusReport {
        scale: opts.scale,
        cases: opts.cases,
        rows,
        knowledge_bench: Some(knowledge_bench),
        solver_bench: Some(solver_bench),
        // sampled after every level + the benches: cumulative disk hits
        kb: opts.knowledge_state.as_ref().map(|s| s.kb_report()),
        modules_poisoned,
        traces,
    })
}

/// Runs the multi-module near-miss probe design once at `Full`: the
/// workload where cross-module counterexample sharing pays (each cone's
/// rare polarity needs a SAT witness the prefilter cannot find — unless
/// a sibling module already published it).
fn run_knowledge_bench(
    opts: &CorpusOptions,
) -> Result<(KnowledgeBench, Option<Trace>, usize), DriverError> {
    let modules = smartly_workloads::knowledge_probes(8, 4, 12);
    let n = modules.len();
    let mut design = Design::from_modules(modules);
    let driver_opts = DriverOptions {
        level: OptLevel::Full,
        jobs: opts.jobs,
        verify: opts.verify,
        share_knowledge: opts.share_knowledge,
        knowledge_state: opts.knowledge_state.clone(),
        trace: opts.trace,
        pipeline: solver_pipeline(opts),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut report = optimize_design(&mut design, &driver_opts)?;
    let wall = started.elapsed();
    let trace = report.trace.take().map(|mut t| {
        t.name = "corpus-knowledge_bench".to_string();
        t
    });
    let (mut queries, mut by_shared_cex) = (0usize, 0usize);
    for m in &report.modules {
        if let Some(r) = &m.report {
            queries += r.sat_stats.queries;
            by_shared_cex += r.sat_stats.by_shared_cex;
        }
    }
    let (published, hits) = report
        .knowledge
        .as_ref()
        .map_or((0, 0), |k| (k.published, k.hits));
    Ok((
        KnowledgeBench {
            modules: n,
            shared: opts.share_knowledge,
            queries,
            by_shared_cex,
            published,
            hits,
            area_after: report.area_after(),
            wall,
        },
        trace,
        report.poisoned(),
    ))
}

/// Runs the CDCL stress design once at `SatOnly`: every cone's mux
/// select is an adder-commutativity miter whose UNSAT side needs real
/// conflict-driven search, so the solver's tier/reduction/GC/rephasing
/// machinery demonstrably fires on a corpus run (cold state; a warm
/// knowledge file answers these queries from disk instead).
fn run_solver_bench(
    opts: &CorpusOptions,
) -> Result<(SolverBench, Option<Trace>, usize), DriverError> {
    let cones = 4;
    let modules = smartly_workloads::solver_stress(cones, 10);
    let mut design = Design::from_modules(modules);
    let driver_opts = DriverOptions {
        level: OptLevel::SatOnly,
        jobs: opts.jobs,
        verify: opts.verify,
        share_knowledge: opts.share_knowledge,
        knowledge_state: opts.knowledge_state.clone(),
        trace: opts.trace,
        pipeline: solver_pipeline(opts),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut report = optimize_design(&mut design, &driver_opts)?;
    let wall = started.elapsed();
    let trace = report.trace.take().map(|mut t| {
        t.name = "corpus-solver_bench".to_string();
        t
    });
    let mut sat = SatPassStats::default();
    for m in &report.modules {
        if let Some(r) = &m.report {
            sat.absorb(&r.sat_stats);
        }
    }
    Ok((
        SolverBench {
            cones,
            queries: sat.queries,
            sat,
            area_after: report.area_after(),
            wall,
        },
        trace,
        report.poisoned(),
    ))
}

impl CorpusReport {
    /// Machine-readable artifact (the `BENCH_driver.json` schema): per
    /// circuit, area before/after, wall time, and query-funnel telemetry
    /// for every level.
    pub fn to_json(&self) -> Json {
        self.json_inner(true)
    }

    /// Timing-free rendering of the artifact: a pure function of the
    /// corpus and options, byte-identical across runs, machines and
    /// `--jobs` settings — the determinism contract the CI bench-smoke
    /// step diffs.
    pub fn digest_json(&self) -> Json {
        self.json_inner(false)
    }

    fn json_inner(&self, include_timing: bool) -> Json {
        let mut obj = Json::object();
        obj.set("bench", Json::Str("smartly corpus".into()));
        obj.set("scale", Json::Str(scale_name(self.scale).into()));
        if let Some(n) = self.cases {
            // a bounded run is a different benchmark: stamp the bound
            // into the digest so it never diffs clean against a full run
            obj.set("cases", Json::UInt(n as u64));
        }
        let circuits = self
            .rows
            .iter()
            .map(|row| {
                let mut c = Json::object();
                c.set("name", Json::Str(row.name.clone()));
                c.set("area_original", Json::UInt(row.area_original as u64));
                for lr in &row.levels {
                    let mut l = Json::object();
                    l.set("area_after", Json::UInt(lr.area_after as u64));
                    if include_timing {
                        l.set("wall_us", Json::UInt(lr.wall.as_micros() as u64));
                    }
                    if let Some(red) = row.reduction_vs_baseline(lr.level) {
                        l.set("reduction_vs_yosys", Json::Float(red));
                    }
                    if let Some(eq) = lr.equivalent {
                        l.set("equivalent", Json::Bool(eq));
                    }
                    if matches!(lr.level, OptLevel::SatOnly | OptLevel::Full) {
                        // cache-invariant counters stay in the digest;
                        // layer attribution (scheduling-sensitive once
                        // the shared bank is on, warm-state-sensitive
                        // once a knowledge file is loaded) and solver
                        // telemetry ride with the timings only
                        let mut q = Json::object();
                        q.set("queries", Json::UInt(lr.sat.queries as u64));
                        q.set("by_inference", Json::UInt(lr.sat.by_inference as u64));
                        if include_timing {
                            // same registry as the module report: one
                            // registration point defines key names/order
                            for (name, value) in funnel_counters(&lr.sat).iter() {
                                q.set(name, Json::UInt(value));
                            }
                            q.set("funnel_hist", funnel_hist_json(&lr.sat.profile));
                            q.set("solver", crate::report::solver_json(&lr.sat));
                        }
                        l.set("query_funnel", q);
                    }
                    c.set(lr.level.name(), l);
                }
                c
            })
            .collect();
        obj.set("circuits", Json::Array(circuits));
        if include_timing {
            obj.set("modules_poisoned", Json::UInt(self.modules_poisoned as u64));
            if let Some(kb) = &self.knowledge_bench {
                let mut k = Json::object();
                k.set("modules", Json::UInt(kb.modules as u64));
                k.set("shared_bank", Json::Bool(kb.shared));
                k.set("queries", Json::UInt(kb.queries as u64));
                k.set("by_shared_cex", Json::UInt(kb.by_shared_cex as u64));
                k.set("published", Json::UInt(kb.published));
                k.set("hits", Json::UInt(kb.hits));
                k.set("area_after", Json::UInt(kb.area_after as u64));
                k.set("wall_us", Json::UInt(kb.wall.as_micros() as u64));
                obj.set("knowledge_bench", k);
            }
            if let Some(sb) = &self.solver_bench {
                let mut k = Json::object();
                k.set("cones", Json::UInt(sb.cones as u64));
                k.set("queries", Json::UInt(sb.queries as u64));
                k.set("by_sat", Json::UInt(sb.sat.by_sat as u64));
                k.set("solver", crate::report::solver_json(&sb.sat));
                k.set("area_after", Json::UInt(sb.area_after as u64));
                k.set("wall_us", Json::UInt(sb.wall.as_micros() as u64));
                obj.set("solver_bench", k);
            }
            if let Some(kb) = &self.kb {
                obj.set("kb", crate::report::kb_json(kb));
            }
        }
        obj
    }

    /// Suite-wide query-funnel totals over the SAT-enabled levels.
    pub fn funnel_totals(&self) -> SatPassStats {
        let mut total = SatPassStats::default();
        for row in &self.rows {
            for lr in &row.levels {
                if matches!(lr.level, OptLevel::SatOnly | OptLevel::Full) {
                    total.absorb(&lr.sat);
                }
            }
        }
        total
    }
}

impl CorpusReport {
    /// Table-III-style summary at an explicit verbosity: `Quiet` drops
    /// the per-circuit rows (the totals and bench lines remain), which
    /// is what CI logs want. `Display` delegates here with `Normal`.
    pub fn render_human(&self, verbosity: Verbosity) -> String {
        let mut out = String::new();
        self.render_into(&mut out, verbosity).expect("write");
        out
    }

    fn render_into(&self, f: &mut impl fmt::Write, verbosity: Verbosity) -> fmt::Result {
        if verbosity != Verbosity::Quiet {
            writeln!(
                f,
                "{:<16} {:>10} {:>10} {:>8} {:>8} {:>8}",
                "circuit", "original", "yosys", "sat%", "rebuild%", "full%"
            )?;
            for row in &self.rows {
                let yosys = row.level(OptLevel::Baseline).map_or(0, |l| l.area_after);
                let pct = |level| {
                    row.reduction_vs_baseline(level)
                        .map_or("-".to_string(), |r| format!("{:.2}", 100.0 * r))
                };
                writeln!(
                    f,
                    "{:<16} {:>10} {:>10} {:>8} {:>8} {:>8}",
                    row.name,
                    row.area_original,
                    yosys,
                    pct(OptLevel::SatOnly),
                    pct(OptLevel::RebuildOnly),
                    pct(OptLevel::Full),
                )?;
            }
        }
        let wall: Duration = self
            .rows
            .iter()
            .flat_map(|r| r.levels.iter().map(|l| l.wall))
            .sum();
        writeln!(
            f,
            "{} circuits x {} levels, {:.1} s total optimize time",
            self.rows.len(),
            OptLevel::ALL.len(),
            wall.as_secs_f64(),
        )?;
        let t = self.funnel_totals();
        writeln!(
            f,
            "query funnel (sat+full): {} queries = inference {} + memo {} + disk-verdict {} + cex {} + shared-cex {} + prefilter {} + sim {} + sat-const {} + other {}",
            t.queries,
            t.by_inference,
            t.by_memo,
            t.by_disk_verdict,
            t.by_cex,
            t.by_shared_cex,
            t.by_prefilter,
            t.by_sim,
            t.by_sat,
            t.queries.saturating_sub(
                t.by_inference
                    + t.by_memo
                    + t.by_disk_verdict
                    + t.by_cex
                    + t.by_shared_cex
                    + t.by_prefilter
                    + t.by_sim
                    + t.by_sat
            ),
        )?;
        write!(
            f,
            "memo carryover {} (invalidated {}), solver: {} conflicts / {} propagations / {} learnts / {} resets",
            t.memo_carryover,
            t.memo_invalidated,
            t.solver_conflicts,
            t.solver_propagations,
            t.solver_learnts,
            t.solver_resets,
        )?;
        if let Some(sb) = &self.solver_bench {
            write!(
                f,
                "\nsolver bench ({} miter cones): {} queries, {}, {:.1} ms",
                sb.cones,
                sb.queries,
                sb.sat.solver_summary(),
                sb.wall.as_secs_f64() * 1e3,
            )?;
        }
        if let Some(kb) = &self.knowledge_bench {
            write!(
                f,
                "\nknowledge bench ({} near-miss modules, bank {}): {} queries, shared-cex {}, published {}, hits {}, {:.1} ms",
                kb.modules,
                if kb.shared { "on" } else { "off" },
                kb.queries,
                kb.by_shared_cex,
                kb.published,
                kb.hits,
                kb.wall.as_secs_f64() * 1e3,
            )?;
        }
        if let Some(k) = &self.kb {
            write!(
                f,
                "\nknowledge file: loaded {} shapes + {} verdicts, {} disk hits{}",
                k.loaded_shapes,
                k.loaded_verdicts,
                k.disk_hits,
                if k.stale_rejected || k.load_failed {
                    " (cold start: store rejected)"
                } else {
                    ""
                },
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for CorpusReport {
    /// Table-III-style summary: per-method reduction vs the Yosys
    /// baseline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render_into(f, Verbosity::Normal)
    }
}
