//! The scaling-curve runner (`smartly corpus --curve`).
//!
//! Answers the question the single-scale BENCH artifacts cannot: *how
//! does wall time — and where it goes — move as designs grow and as
//! workers are added?* For every requested [`Scale`] it optimizes the
//! public corpus at `Full` across a doubling jobs ladder (1, 2, 4, …,
//! N) and records, per `(scale, jobs)` point, the total AIG area
//! before/after, the wall time, the query-funnel attribution, and the
//! solver counters.
//!
//! The artifact is **timing-only** by construction: a curve exists to
//! show wall-clock scaling, which is inherently machine- and
//! scheduling-dependent, so there is no digest variant and no
//! determinism gate on its bytes. The cache-invariant counters it
//! carries (queries, areas) still agree with the digest-gated
//! `BENCH_*.json` blocks for the same scale — the curve adds timing
//! context, it does not relax the digest contract.

use crate::engine::{optimize_design, DriverOptions};
use crate::json::Json;
use crate::report::funnel_counters;
use crate::DriverError;
use smartly_core::sat_pass::SatPassStats;
use smartly_core::OptLevel;
use smartly_netlist::Design;
use smartly_workloads::{public_corpus, Scale};
use std::fmt;
use std::time::Duration;

/// Configuration for [`run_scaling_curve`].
#[derive(Clone, Debug)]
pub struct CurveOptions {
    /// Scales to sweep, in the order the points should appear.
    pub scales: Vec<Scale>,
    /// Top of the jobs ladder (0 = one per CPU). The ladder is the
    /// powers of two up to this value, with the value itself appended
    /// when it is not a power of two.
    pub max_jobs: usize,
    /// Run only the first `n` circuits per scale (`None` = all 10);
    /// the CI smoke uses this to bound wall time.
    pub cases: Option<usize>,
}

impl Default for CurveOptions {
    fn default() -> Self {
        CurveOptions {
            scales: vec![Scale::Tiny, Scale::Small, Scale::Paper, Scale::Medium],
            max_jobs: 0,
            cases: None,
        }
    }
}

/// The doubling jobs ladder: `1, 2, 4, …` up to `max` (0 = one per
/// CPU), with `max` itself appended when it is not a power of two.
pub fn jobs_ladder(max_jobs: usize) -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max = if max_jobs == 0 { hw } else { max_jobs }.max(1);
    let mut ladder = Vec::new();
    let mut j = 1;
    while j <= max {
        ladder.push(j);
        j *= 2;
    }
    if *ladder.last().expect("ladder starts at 1") != max {
        ladder.push(max);
    }
    ladder
}

/// One `(scale, jobs)` measurement on the curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// Corpus scale of this point.
    pub scale: Scale,
    /// Worker threads used.
    pub jobs: usize,
    /// Circuits optimized (10, unless `cases` bounded the run).
    pub circuits: usize,
    /// Total AIG area before optimization — the x-axis of the curve.
    pub cells_before: usize,
    /// Total AIG area after the `Full` pipeline.
    pub cells_after: usize,
    /// Wall time for the whole `Full` run at this point.
    pub wall: Duration,
    /// Aggregated SAT-pass telemetry (funnel attribution + solver
    /// counters) across all circuits.
    pub sat: SatPassStats,
}

/// The whole sweep: one [`CurvePoint`] per `(scale, jobs)` pair.
#[derive(Clone, Debug)]
pub struct CurveReport {
    /// Points in sweep order (scales outer, jobs ladder inner).
    pub points: Vec<CurvePoint>,
}

/// Runs the `Full` pipeline over the public corpus for every
/// `(scale, jobs)` pair in `opts` and collects the curve.
///
/// Every point starts from a fresh clone of the pristine modules and a
/// fresh in-process knowledge state, so points are independent cold
/// runs — adding workers or growing the scale is the only variable.
///
/// # Errors
///
/// Returns [`DriverError`] when a generated circuit fails to compile
/// (a workloads bug) or a pipeline hits a netlist error.
pub fn run_scaling_curve(opts: &CurveOptions) -> Result<CurveReport, DriverError> {
    let mut points = Vec::new();
    for &scale in &opts.scales {
        let mut cases = public_corpus(scale);
        if let Some(n) = opts.cases {
            cases.truncate(n);
        }
        let pristine: Vec<smartly_netlist::Module> = cases
            .iter()
            .map(|c| c.compile())
            .collect::<Result<_, _>>()?;
        for jobs in jobs_ladder(opts.max_jobs) {
            let mut design = Design::from_modules(pristine.clone());
            let driver_opts = DriverOptions {
                level: OptLevel::Full,
                jobs,
                // circuits are all distinct; skip the hashing pass
                memoize: false,
                ..Default::default()
            };
            let started = std::time::Instant::now();
            let report = optimize_design(&mut design, &driver_opts)?;
            let wall = started.elapsed();
            let mut sat = SatPassStats::default();
            let (mut before, mut after) = (0usize, 0usize);
            for m in &report.modules {
                if let Some(r) = &m.report {
                    before += r.area_before;
                    after += r.area_after;
                    sat.absorb(&r.sat_stats);
                }
            }
            points.push(CurvePoint {
                scale,
                jobs,
                circuits: cases.len(),
                cells_before: before,
                cells_after: after,
                wall,
                sat,
            });
        }
    }
    Ok(CurveReport { points })
}

impl CurveReport {
    /// Machine-readable artifact (`smartly corpus --curve <path>`).
    ///
    /// Timing-only — there is deliberately no digest variant (see the
    /// module docs); wall times differ run to run by design.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("bench", Json::Str("smartly corpus --curve".into()));
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut o = Json::object();
                o.set("scale", Json::Str(p.scale.name().into()));
                o.set("jobs", Json::UInt(p.jobs as u64));
                o.set("circuits", Json::UInt(p.circuits as u64));
                o.set("cells_before", Json::UInt(p.cells_before as u64));
                o.set("cells_after", Json::UInt(p.cells_after as u64));
                o.set("wall_us", Json::UInt(p.wall.as_micros() as u64));
                let mut q = Json::object();
                q.set("queries", Json::UInt(p.sat.queries as u64));
                q.set("by_inference", Json::UInt(p.sat.by_inference as u64));
                for (name, value) in funnel_counters(&p.sat).iter() {
                    q.set(name, Json::UInt(value));
                }
                o.set("query_funnel", q);
                o.set("solver", crate::report::solver_json(&p.sat));
                o
            })
            .collect();
        obj.set("points", Json::Array(points));
        obj
    }
}

impl fmt::Display for CurveReport {
    /// Human-readable curve: one row per `(scale, jobs)` point.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>5} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "scale", "jobs", "circuits", "cells", "wall_ms", "queries", "conflicts"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<8} {:>5} {:>9} {:>10} {:>10.1} {:>10} {:>10}",
                p.scale.name(),
                p.jobs,
                p.circuits,
                p.cells_before,
                p.wall.as_secs_f64() * 1e3,
                p.sat.queries,
                p.sat.solver_conflicts,
            )?;
        }
        write!(f, "{} points", self.points.len())
    }
}
