//! Chrome trace-event export and trace summarization.
//!
//! The telemetry crate records spans as raw begin/end event streams, one
//! per module track. This module turns a merged [`Trace`] into the
//! Chrome trace-event JSON format (loadable in Perfetto or
//! `chrome://tracing`), and provides the reverse direction for the
//! `smartly trace` subcommand: parse an exported file back, validate the
//! nesting, and aggregate wall/self time per span name.
//!
//! Everything here is timing-side only. Trace files are a separate
//! artifact from the optimization report and never feed the `--digest`
//! output.

use std::fmt;

use smartly_telemetry::{ArgValue, Phase, Trace};

use crate::json::Json;

/// Renders a merged trace as a Chrome trace-event JSON document.
///
/// Layout: one process (`pid` 0) named after the trace, one thread per
/// module track (`tid` = track index) named by the track label, then the
/// track's events as `B`/`E` phase pairs with microsecond timestamps.
/// Track order is the design's module order, so the export is
/// structurally deterministic even though timestamps are not.
pub fn chrome_trace_json(trace: &Trace) -> Json {
    let mut events = Vec::with_capacity(trace.event_count() + trace.tracks.len() + 1);
    events.push(metadata_event("process_name", 0, &trace.name));
    for (tid, track) in trace.tracks.iter().enumerate() {
        events.push(metadata_event("thread_name", tid as u64, &track.label));
    }
    for (tid, track) in trace.tracks.iter().enumerate() {
        for ev in &track.events {
            let mut obj = Json::object();
            obj.set("name", Json::Str(ev.name.to_string()));
            obj.set(
                "ph",
                Json::Str(
                    match ev.phase {
                        Phase::Begin => "B",
                        Phase::End => "E",
                    }
                    .to_string(),
                ),
            );
            obj.set("ts", Json::UInt(ev.ts_us));
            obj.set("pid", Json::UInt(0));
            obj.set("tid", Json::UInt(tid as u64));
            if !ev.args.is_empty() {
                let mut args = Json::object();
                for (k, v) in &ev.args {
                    let val = match v {
                        ArgValue::U64(n) => Json::UInt(*n),
                        ArgValue::Str(s) => Json::Str(s.to_string()),
                    };
                    args.set(k, val);
                }
                obj.set("args", args);
            }
            events.push(obj);
        }
    }
    let mut root = Json::object();
    root.set("displayTimeUnit", Json::Str("ms".to_string()));
    root.set("traceEvents", Json::Array(events));
    root
}

fn metadata_event(kind: &str, tid: u64, name: &str) -> Json {
    let mut args = Json::object();
    args.set("name", Json::Str(name.to_string()));
    let mut obj = Json::object();
    obj.set("name", Json::Str(kind.to_string()));
    obj.set("ph", Json::Str("M".to_string()));
    obj.set("pid", Json::UInt(0));
    obj.set("tid", Json::UInt(tid));
    obj.set("args", args);
    obj
}

/// Wall/self-time aggregate for one span name across the whole trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Span name as recorded (`module`, `round`, `pass:sat`, `query`, …).
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall time, children included, in microseconds.
    pub wall_us: u64,
    /// Total self time (wall minus direct children), in microseconds.
    pub self_us: u64,
}

/// Per-layer attribution extracted from `query` spans' `layer` end-args.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerAgg {
    /// Funnel layer name (`memo`, `simulation`, `sat`, …).
    pub layer: String,
    /// Queries decided at this layer.
    pub count: u64,
    /// Total wall time of those queries, in microseconds.
    pub wall_us: u64,
}

/// Validated aggregate view over an exported trace file.
///
/// Construction doubles as the validator used by the CI smoke test:
/// malformed JSON, mismatched `B`/`E` pairs, and clock-regressing spans
/// are all reported as errors rather than skewed statistics.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Process name from the trace metadata (the trace's own name).
    pub name: String,
    /// `(label, completed spans, wall time of top-level spans)` per
    /// thread track, in trace order.
    pub tracks: Vec<(String, u64, u64)>,
    /// Aggregates per span name, sorted by descending self time.
    pub spans: Vec<SpanAgg>,
    /// Query-funnel attribution, sorted by descending wall time.
    pub funnel: Vec<LayerAgg>,
    /// Total events consumed, metadata included.
    pub events: u64,
}

impl TraceSummary {
    /// Builds a summary from a parsed trace-event document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural defect: missing
    /// `traceEvents`, unknown phase, `E` without a matching `B`, name
    /// mismatch between a begin/end pair, an end timestamp before its
    /// begin, or a track left with unclosed spans.
    pub fn from_json(doc: &Json) -> Result<TraceSummary, String> {
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("missing traceEvents array")?;
        let mut summary = TraceSummary {
            events: events.len() as u64,
            ..TraceSummary::default()
        };
        // Per-tid open-span stack: (name, begin ts, child wall so far).
        let mut stacks: Vec<Vec<(String, u64, u64)>> = Vec::new();
        let mut track_labels: Vec<String> = Vec::new();
        let mut track_counts: Vec<(u64, u64)> = Vec::new();
        let mut spans: Vec<SpanAgg> = Vec::new();
        let mut funnel: Vec<LayerAgg> = Vec::new();

        for (i, ev) in events.iter().enumerate() {
            let name = ev
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing name"))?;
            let phase = ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing ph"))?;
            let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0) as usize;
            if stacks.len() <= tid {
                stacks.resize_with(tid + 1, Vec::new);
                track_labels.resize(tid + 1, String::new());
                track_counts.resize(tid + 1, (0, 0));
            }
            match phase {
                "M" => {
                    let meta = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str);
                    match name {
                        "process_name" => summary.name = meta.unwrap_or("").to_string(),
                        "thread_name" => track_labels[tid] = meta.unwrap_or("").to_string(),
                        _ => {}
                    }
                }
                "B" => {
                    let ts = ev
                        .get("ts")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("event {i}: B without ts"))?;
                    stacks[tid].push((name.to_string(), ts, 0));
                }
                "E" => {
                    let ts = ev
                        .get("ts")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("event {i}: E without ts"))?;
                    let (open_name, begin_ts, child_us) = stacks[tid]
                        .pop()
                        .ok_or_else(|| format!("event {i}: E '{name}' without open span"))?;
                    if open_name != name {
                        return Err(format!("event {i}: E '{name}' closes span '{open_name}'"));
                    }
                    let wall = ts
                        .checked_sub(begin_ts)
                        .ok_or_else(|| format!("event {i}: span '{name}' ends before it begins"))?;
                    let agg = match spans.iter_mut().find(|a| a.name == name) {
                        Some(a) => a,
                        None => {
                            spans.push(SpanAgg {
                                name: name.to_string(),
                                ..SpanAgg::default()
                            });
                            spans.last_mut().expect("just pushed")
                        }
                    };
                    agg.count += 1;
                    agg.wall_us += wall;
                    agg.self_us += wall - child_us.min(wall);
                    track_counts[tid].0 += 1;
                    if let Some(parent) = stacks[tid].last_mut() {
                        parent.2 += wall;
                    } else {
                        track_counts[tid].1 += wall;
                    }
                    if name == "query" {
                        let layer = ev
                            .get("args")
                            .and_then(|a| a.get("layer"))
                            .and_then(Json::as_str)
                            .unwrap_or("unknown");
                        let entry = match funnel.iter_mut().find(|l| l.layer == layer) {
                            Some(l) => l,
                            None => {
                                funnel.push(LayerAgg {
                                    layer: layer.to_string(),
                                    ..LayerAgg::default()
                                });
                                funnel.last_mut().expect("just pushed")
                            }
                        };
                        entry.count += 1;
                        entry.wall_us += wall;
                    }
                }
                other => return Err(format!("event {i}: unknown phase '{other}'")),
            }
        }
        for (tid, stack) in stacks.iter().enumerate() {
            if let Some((name, _, _)) = stack.last() {
                return Err(format!("track {tid}: span '{name}' never closed"));
            }
        }
        summary.tracks = track_labels
            .into_iter()
            .zip(track_counts)
            .map(|(label, (count, wall))| (label, count, wall))
            .collect();
        spans.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        funnel.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then(a.layer.cmp(&b.layer)));
        summary.spans = spans;
        summary.funnel = funnel;
        Ok(summary)
    }

    /// Parses and summarizes raw trace-file text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and the structural checks of
    /// [`TraceSummary::from_json`].
    pub fn from_text(text: &str) -> Result<TraceSummary, String> {
        let doc = Json::parse(text)?;
        TraceSummary::from_json(&doc)
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace '{}': {} events, {} tracks",
            self.name,
            self.events,
            self.tracks.len()
        )?;
        writeln!(f, "\nper-module tracks:")?;
        for (label, count, wall) in &self.tracks {
            writeln!(f, "  {label:<28} {count:>7} spans  {:>10}", fmt_us(*wall))?;
        }
        writeln!(f, "\ntop spans by self time:")?;
        writeln!(
            f,
            "  {:<18} {:>8} {:>12} {:>12}",
            "span", "count", "wall", "self"
        )?;
        for agg in self.spans.iter().take(12) {
            writeln!(
                f,
                "  {:<18} {:>8} {:>12} {:>12}",
                agg.name,
                agg.count,
                fmt_us(agg.wall_us),
                fmt_us(agg.self_us)
            )?;
        }
        if !self.funnel.is_empty() {
            writeln!(f, "\nquery-funnel attribution:")?;
            writeln!(
                f,
                "  {:<14} {:>8} {:>12} {:>7}",
                "layer", "queries", "wall", "share"
            )?;
            let total: u64 = self.funnel.iter().map(|l| l.wall_us).sum();
            for layer in &self.funnel {
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * layer.wall_us as f64 / total as f64
                };
                writeln!(
                    f,
                    "  {:<14} {:>8} {:>12} {share:>6.1}%",
                    layer.layer,
                    layer.count,
                    fmt_us(layer.wall_us)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use smartly_telemetry::{ArgValue, Trace, TraceBuf, TraceClock};

    use super::{chrome_trace_json, TraceSummary};
    use crate::json::Json;

    fn sample_trace() -> Trace {
        let clock = TraceClock::start();
        let mut buf = TraceBuf::new(clock);
        buf.begin_with("module", &[("cells", ArgValue::U64(10))]);
        buf.begin("round");
        buf.begin("query");
        buf.end_with(&[("layer", ArgValue::Str("sat"))]);
        buf.begin("query");
        buf.end_with(&[("layer", ArgValue::Str("memo"))]);
        buf.end();
        buf.end();
        let mut trace = Trace::new("unit");
        trace.push_track("top", buf.finish());
        trace
    }

    #[test]
    fn export_is_parseable_and_balanced() {
        let doc = chrome_trace_json(&sample_trace());
        let text = doc.render_pretty(1);
        let summary = TraceSummary::from_text(&text).expect("valid trace");
        assert_eq!(summary.name, "unit");
        assert_eq!(summary.tracks.len(), 1);
        assert_eq!(summary.tracks[0].0, "top");
        // module + round + 2 queries completed.
        assert_eq!(summary.tracks[0].1, 4);
        let module = summary.spans.iter().find(|a| a.name == "module").unwrap();
        assert_eq!(module.count, 1);
        assert!(module.wall_us >= module.self_us);
        let mut layers: Vec<&str> = summary.funnel.iter().map(|l| l.layer.as_str()).collect();
        layers.sort_unstable();
        assert_eq!(layers, ["memo", "sat"]);
    }

    #[test]
    fn summary_rejects_unbalanced_events() {
        let mut doc = Json::object();
        doc.set(
            "traceEvents",
            Json::Array(vec![{
                let mut e = Json::object();
                e.set("name", Json::Str("x".into()));
                e.set("ph", Json::Str("E".into()));
                e.set("ts", Json::UInt(1));
                e.set("pid", Json::UInt(0));
                e.set("tid", Json::UInt(0));
                e
            }]),
        );
        assert!(TraceSummary::from_json(&doc)
            .unwrap_err()
            .contains("without open span"));
    }

    #[test]
    fn summary_rejects_dangling_begin() {
        let mut doc = Json::object();
        doc.set(
            "traceEvents",
            Json::Array(vec![{
                let mut e = Json::object();
                e.set("name", Json::Str("x".into()));
                e.set("ph", Json::Str("B".into()));
                e.set("ts", Json::UInt(1));
                e.set("pid", Json::UInt(0));
                e.set("tid", Json::UInt(0));
                e
            }]),
        );
        assert!(TraceSummary::from_json(&doc)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn summary_rejects_name_mismatch() {
        let mut b = Json::object();
        b.set("name", Json::Str("a".into()));
        b.set("ph", Json::Str("B".into()));
        b.set("ts", Json::UInt(1));
        b.set("tid", Json::UInt(0));
        let mut e = Json::object();
        e.set("name", Json::Str("b".into()));
        e.set("ph", Json::Str("E".into()));
        e.set("ts", Json::UInt(2));
        e.set("tid", Json::UInt(0));
        let mut doc = Json::object();
        doc.set("traceEvents", Json::Array(vec![b, e]));
        assert!(TraceSummary::from_json(&doc)
            .unwrap_err()
            .contains("closes span"));
    }
}
