//! Integration tests for the design-level driver: determinism across
//! thread counts, memo-cache behavior, verification, and Verilog
//! round-tripping.

use smartly_driver::{emit_design, optimize_design, DriverOptions, ModuleOutcome};
use smartly_netlist::Design;

/// A multi-module source mixing the paper's Fig. 3 shape (SAT
/// opportunity), a case chain (rebuild opportunity), and a plain
/// datapath.
const MULTI: &str = r#"
module fig3_cone (input wire s, input wire r, input wire [7:0] a,
                  input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule

module case_chain (input wire [1:0] sel, input wire [7:0] p0,
                   input wire [7:0] p1, input wire [7:0] p2,
                   input wire [7:0] p3, output reg [7:0] q);
  always @(*) begin
    case (sel)
      2'b00: q = p0;
      2'b01: q = p1;
      2'b10: q = p2;
      default: q = p3;
    endcase
  end
endmodule

module datapath (input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] s, output wire lt);
  assign s = a + b;
  assign lt = a < b;
endmodule
"#;

/// `MULTI` plus two byte-identical copies of `fig3_cone` under other
/// names — the generated-RTL duplication pattern the memo cache targets.
const MULTI_DUP: &str = r#"
module fig3_cone (input wire s, input wire r, input wire [7:0] a,
                  input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule

module fig3_cone_mirror (input wire s, input wire r, input wire [7:0] a,
                  input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule

module fig3_cone_again (input wire s, input wire r, input wire [7:0] a,
                  input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule
"#;

fn compile(src: &str) -> Design {
    smartly_verilog::compile(src).expect("source compiles")
}

#[test]
fn jobs_do_not_change_the_report_or_the_netlist() {
    let run = |jobs: usize| {
        let mut design = compile(MULTI);
        let opts = DriverOptions {
            jobs,
            verify: true,
            ..Default::default()
        };
        let report = optimize_design(&mut design, &opts).expect("driver");
        (report, emit_design(&design))
    };
    let (r1, v1) = run(1);
    let (r4, v4) = run(4);

    // determinism: byte-identical timing-free reports and emitted Verilog
    assert_eq!(r1.digest(), r4.digest());
    assert_eq!(v1, v4);

    // every module verified equivalent at both settings
    assert_eq!(r1.all_equivalent(), Some(true));
    assert_eq!(r4.all_equivalent(), Some(true));
    assert_eq!(r1.modules.len(), 3);
    for m in &r1.modules {
        assert!(
            m.verified_equivalent() == Some(true),
            "{} must verify",
            m.name
        );
    }

    // the run did real work: the fig3 cone shrinks under Full
    assert!(r1.area_after() < r1.area_before());
}

#[test]
fn optimized_design_round_trips_through_verilog() {
    let mut design = compile(MULTI);
    let opts = DriverOptions::default();
    optimize_design(&mut design, &opts).expect("driver");
    let emitted = emit_design(&design);
    let reparsed = compile(&emitted);
    assert_eq!(reparsed.len(), design.len());
    let names: Vec<&str> = reparsed.modules().iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["fig3_cone", "case_chain", "datapath"]);
    for m in reparsed.modules() {
        m.validate().expect("emitted module validates");
    }
}

#[test]
fn memo_cache_hits_duplicated_modules() {
    let mut design = compile(MULTI_DUP);
    let opts = DriverOptions {
        verify: true,
        ..Default::default()
    };
    let report = optimize_design(&mut design, &opts).expect("driver");

    assert_eq!(report.memo_hits(), 2);
    assert!(matches!(
        report.modules[0].outcome,
        ModuleOutcome::Optimized
    ));
    for (i, expected_name) in [(1, "fig3_cone_mirror"), (2, "fig3_cone_again")] {
        let m = &report.modules[i];
        assert_eq!(m.name, expected_name);
        match &m.outcome {
            ModuleOutcome::MemoHit { of } => assert_eq!(of, "fig3_cone"),
            other => panic!("expected memo hit, got {other:?}"),
        }
        // the clone inherits its representative's numbers and verdict
        assert_eq!(m.cells_after, report.modules[0].cells_after);
        assert_eq!(m.verified_equivalent(), Some(true));
    }

    // cloned modules keep their own names in the design and the emission
    let names: Vec<&str> = design.modules().iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["fig3_cone", "fig3_cone_mirror", "fig3_cone_again"]
    );
    let emitted = emit_design(&design);
    assert!(emitted.contains("module fig3_cone_mirror ("));
    assert!(emitted.contains("module fig3_cone_again ("));

    // and the memoized result is byte-identical to optimizing without
    // the cache
    let mut no_memo = compile(MULTI_DUP);
    let no_memo_report = optimize_design(
        &mut no_memo,
        &DriverOptions {
            verify: true,
            memoize: false,
            ..Default::default()
        },
    )
    .expect("driver");
    assert_eq!(no_memo_report.memo_hits(), 0);
    assert_eq!(emit_design(&no_memo), emitted);
}

#[test]
fn memoized_and_unmemoized_reports_agree_on_areas() {
    let mut a = compile(MULTI_DUP);
    let mut b = compile(MULTI_DUP);
    let ra = optimize_design(&mut a, &DriverOptions::default()).expect("driver");
    let rb = optimize_design(
        &mut b,
        &DriverOptions {
            memoize: false,
            ..Default::default()
        },
    )
    .expect("driver");
    assert_eq!(ra.area_before(), rb.area_before());
    assert_eq!(ra.area_after(), rb.area_after());
}

#[test]
fn timeout_guard_reverts_and_reports() {
    let mut design = compile(MULTI);
    let before_cells: Vec<usize> = design
        .modules()
        .iter()
        .map(|m| m.live_cell_count())
        .collect();
    let opts = DriverOptions {
        // zero budget: everything that runs at all blows it
        timeout: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let report = optimize_design(&mut design, &opts).expect("driver");
    for (m, cells) in report.modules.iter().zip(before_cells) {
        assert!(
            matches!(m.outcome, ModuleOutcome::TimedOut { .. }),
            "{}",
            m.name
        );
        assert_eq!(m.cells_after, cells, "{} reverted", m.name);
    }
    assert_eq!(report.area_before(), 0); // no pipeline reports survive
}

/// Two *near-miss* modules: identical undecidable dependent-control
/// cones (`s ? (s&t ? a : b) : c`), but module `probe_b` carries an
/// extra unrelated gate so the full-text memo cache cannot fire — the
/// design-level knowledge base is the only sharing layer left.
const NEAR_MISS: &str = r#"
module probe_a (input wire s, input wire t, input wire [3:0] a,
                input wire [3:0] b, input wire [3:0] c, output reg [3:0] y);
  wire st = s & t;
  always @(*) begin
    if (s) begin
      if (st) y = a; else y = b;
    end else y = c;
  end
endmodule

module probe_b (input wire s, input wire t, input wire [3:0] a,
                input wire [3:0] b, input wire [3:0] c, output reg [3:0] y,
                output wire extra);
  wire st = s & t;
  assign extra = a[0] ^ b[0];
  always @(*) begin
    if (s) begin
      if (st) y = a; else y = b;
    end else y = c;
  end
endmodule
"#;

/// One module's SAT models seed the other's replay vectors through the
/// design-level bank: with `--jobs 1` the heavier module runs first and
/// publishes, and the sibling's isomorphic query is refuted by shared
/// replay without touching its own solver.
#[test]
fn knowledge_base_seeds_near_miss_modules() {
    let run = |share: bool| {
        let mut design = compile(NEAR_MISS);
        let mut opts = DriverOptions {
            jobs: 1,
            share_knowledge: share,
            verify: true,
            ..Default::default()
        };
        // push the undecidable cone to SAT so models get published
        // (prefilter off, or it refutes the free cone before SAT runs)
        opts.pipeline.sat.inference = false;
        opts.pipeline.sat.sim_threshold = 0;
        opts.pipeline.sat.prefilter_rounds = 0;
        optimize_design(&mut design, &opts).expect("driver")
    };
    let with = run(true);
    let without = run(false);

    let shared_hits: usize = with
        .modules
        .iter()
        .filter_map(|m| m.report.as_ref())
        .map(|r| r.sat_stats.by_shared_cex)
        .sum();
    assert!(shared_hits > 0, "shared bank never fired");
    let k = with.knowledge.expect("bank attached");
    assert!(k.published > 0);
    assert!(k.hits > 0);
    assert!(without.knowledge.is_none());

    // sharing changes attribution, never results: the timing-free
    // digests (areas, rewrites, verdict-derived counters) are identical
    assert_eq!(with.digest(), without.digest());
    assert_eq!(with.all_equivalent(), Some(true));
}

/// The digest stays byte-identical across worker counts with the shared
/// bank enabled — cross-module sharing preserves jobs-determinism.
#[test]
fn knowledge_base_preserves_jobs_determinism() {
    let run = |jobs: usize| {
        let mut design = compile(MULTI);
        let opts = DriverOptions {
            jobs,
            share_knowledge: true,
            ..Default::default()
        };
        let report = optimize_design(&mut design, &opts).expect("driver");
        (report.digest(), emit_design(&design))
    };
    let (d1, v1) = run(1);
    let (d4, v4) = run(4);
    assert_eq!(d1, d4);
    assert_eq!(v1, v4);
}

#[test]
fn empty_design_is_fine() {
    let mut design = Design::new();
    let report = optimize_design(&mut design, &DriverOptions::default()).expect("driver");
    assert!(report.modules.is_empty());
    assert_eq!(report.area_before(), 0);
    assert_eq!(report.all_equivalent(), None);
}
