//! Integration tests for the observability layer: span traces are
//! structurally sound and cover every hierarchy level, tracing never
//! perturbs the digest, and the timing-JSON schema is pinned so
//! downstream consumers (CI validators, dashboards) break loudly here
//! rather than silently there.

use smartly_driver::json::Json;
use smartly_driver::{
    chrome_trace_json, optimize_design, CorpusReport, CorpusRow, DriverOptions, KnowledgeBench,
    LevelResult, SolverBench, TraceSummary,
};
use smartly_netlist::Design;
use std::time::Duration;

/// Two modules with SAT opportunities (redundant nested muxes), so the
/// trace reaches the query funnel and the solver.
const SRC: &str = r#"
module cone_a (input wire s, input wire r, input wire [7:0] a,
               input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule

module cone_b (input wire t, input wire [3:0] p, input wire [3:0] q,
               output reg [3:0] z);
  always @(*) begin
    if (t) begin if (t) z = p; else z = q; end else z = q;
  end
endmodule
"#;

fn compile(src: &str) -> Design {
    smartly_verilog::compile(src).expect("compile")
}

fn run(trace: bool, jobs: usize) -> smartly_driver::DesignReport {
    let mut design = compile(SRC);
    let opts = DriverOptions {
        trace,
        jobs,
        ..Default::default()
    };
    optimize_design(&mut design, &opts).expect("optimize")
}

#[test]
fn digest_is_identical_with_tracing_on_and_off_across_jobs() {
    let baseline = run(false, 1).digest();
    for (trace, jobs) in [(true, 1), (false, 4), (true, 4)] {
        assert_eq!(
            run(trace, jobs).digest(),
            baseline,
            "digest diverged at trace={trace} jobs={jobs}"
        );
    }
}

#[test]
fn trace_covers_every_hierarchy_level_and_is_balanced() {
    let report = run(true, 2);
    let trace = report.trace.as_ref().expect("trace collected");
    assert_eq!(trace.tracks.len(), 2, "one track per module");
    assert_eq!(trace.tracks[0].label, "cone_a");
    assert_eq!(trace.tracks[1].label, "cone_b");

    // Export, re-parse, and validate — the same path CI's smoke test
    // exercises through the CLI.
    let text = chrome_trace_json(trace).render_pretty(1);
    let summary = TraceSummary::from_text(&text).expect("structurally valid trace");
    let span_names: Vec<&str> = summary.spans.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "module",
        "round",
        "pass:baseline",
        "pass:sat",
        "pass:clean",
        "query",
    ] {
        assert!(
            span_names.contains(&required),
            "missing span '{required}' in {span_names:?}"
        );
    }
    // Both redundant-mux cones force at least one decide query, and the
    // funnel attribution derived from span args must account for every
    // query span.
    let queries: u64 = summary.funnel.iter().map(|l| l.count).sum();
    let query_spans = summary
        .spans
        .iter()
        .find(|s| s.name == "query")
        .expect("query spans present");
    assert_eq!(queries, query_spans.count);
    assert!(queries > 0);
    // Wall >= self on aggregates with children.
    for agg in &summary.spans {
        assert!(agg.wall_us >= agg.self_us, "span {}", agg.name);
    }
}

#[test]
fn disabled_tracing_attaches_no_trace() {
    let report = run(false, 1);
    assert!(report.trace.is_none());
}

fn keys(obj: &Json) -> Vec<&str> {
    match obj {
        Json::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

/// Pins the timing-JSON schema of the per-module report: the `funnel`
/// counter registry, the `funnel_hist` layer set, and the `solver`
/// block. A failure here means a consumer-visible schema change — bump
/// deliberately, with the README table.
#[test]
fn module_timing_json_schema_snapshot() {
    let report = run(false, 1);
    let doc = Json::parse(&report.to_json().render()).expect("self-parse");
    let module = &doc.get("modules").unwrap().as_array().unwrap()[0];
    let sat = module.get("sat_stats").expect("sat_stats block");
    assert_eq!(
        keys(sat),
        [
            "queries",
            "by_inference",
            "unreachable",
            "gates_before_prune",
            "gates_after_prune",
            "funnel",
            "funnel_hist",
            "solver",
        ]
    );
    assert_eq!(
        keys(sat.get("funnel").unwrap()),
        [
            "by_memo",
            "memo_carryover",
            "memo_invalidated",
            "by_disk_verdict",
            "verdicts_published",
            "by_cex",
            "by_shared_cex",
            "by_prefilter",
            "prefilter_rounds",
            "by_sim",
            "by_sat",
            "bank_evictions",
        ]
    );
    let hist = sat.get("funnel_hist").unwrap();
    assert_eq!(keys(hist), ["latency_us", "sat_call"]);
    assert_eq!(
        keys(hist.get("latency_us").unwrap()),
        [
            "memo",
            "disk_verdict",
            "cex_replay",
            "shared_cex",
            "prefilter",
            "simulation",
            "sat",
            "skipped",
        ]
    );
    assert_eq!(
        keys(hist.get("sat_call").unwrap()),
        ["us", "propagations", "conflicts"]
    );
    for (_, h) in ["us", "propagations", "conflicts"]
        .iter()
        .map(|k| (k, hist.get("sat_call").unwrap().get(k).unwrap()))
    {
        assert_eq!(keys(h), ["count", "sum", "buckets"]);
    }
    assert_eq!(
        keys(sat.get("solver").unwrap()),
        [
            "conflicts",
            "propagations",
            "learnts",
            "lbd_core",
            "reduces",
            "arena_gcs",
            "rephases",
            "deadline_checks",
            "ema_forced",
            "ema_blocked",
            "vivified_clauses",
            "vivified_lits",
            "subsumed",
            "strengthened",
            "chrono_backjumps",
            "promoted",
            "rephase_kind",
            "resets",
        ]
    );
    // The digest must carry none of the timing-side blocks.
    let digest = Json::parse(&report.digest()).expect("digest parses");
    let dsat = digest.get("modules").unwrap().as_array().unwrap()[0]
        .get("sat_stats")
        .unwrap();
    assert_eq!(
        keys(dsat),
        [
            "queries",
            "by_inference",
            "unreachable",
            "gates_before_prune",
            "gates_after_prune",
        ]
    );
}

/// Pins the corpus artifact's `knowledge_bench` and `solver_bench`
/// timing blocks without paying for a corpus run: the report struct's
/// fields are public, so a hand-built report exercises the renderer.
#[test]
fn corpus_bench_json_schema_snapshot() {
    let report = CorpusReport {
        scale: smartly_workloads::Scale::Tiny,
        cases: None,
        rows: vec![CorpusRow {
            name: "c0".into(),
            area_original: 10,
            levels: vec![LevelResult {
                level: smartly_core::OptLevel::Full,
                area_after: 8,
                wall: Duration::from_micros(5),
                equivalent: None,
                sat: Default::default(),
            }],
        }],
        knowledge_bench: Some(KnowledgeBench {
            modules: 2,
            shared: true,
            queries: 3,
            by_shared_cex: 1,
            published: 2,
            hits: 1,
            area_after: 7,
            wall: Duration::from_micros(9),
        }),
        solver_bench: Some(SolverBench {
            cones: 4,
            queries: 4,
            sat: Default::default(),
            area_after: 6,
            wall: Duration::from_micros(11),
        }),
        kb: None,
        modules_poisoned: 0,
        traces: Vec::new(),
    };
    let doc = Json::parse(&report.to_json().render()).expect("self-parse");
    assert_eq!(
        keys(doc.get("knowledge_bench").unwrap()),
        [
            "modules",
            "shared_bank",
            "queries",
            "by_shared_cex",
            "published",
            "hits",
            "area_after",
            "wall_us",
        ]
    );
    assert_eq!(
        keys(doc.get("solver_bench").unwrap()),
        [
            "cones",
            "queries",
            "by_sat",
            "solver",
            "area_after",
            "wall_us"
        ]
    );
    let funnel = doc.get("circuits").unwrap().as_array().unwrap()[0]
        .get("full")
        .unwrap()
        .get("query_funnel")
        .unwrap();
    assert_eq!(
        keys(funnel),
        [
            "queries",
            "by_inference",
            "by_memo",
            "memo_carryover",
            "memo_invalidated",
            "by_disk_verdict",
            "verdicts_published",
            "by_cex",
            "by_shared_cex",
            "by_prefilter",
            "prefilter_rounds",
            "by_sim",
            "by_sat",
            "bank_evictions",
            "funnel_hist",
            "solver",
        ]
    );
    // The digest keeps only the cache-invariant pair.
    let digest = report.digest_json();
    let digest = Json::parse(&digest.render()).expect("digest parses");
    let dfunnel = digest.get("circuits").unwrap().as_array().unwrap()[0]
        .get("full")
        .unwrap()
        .get("query_funnel")
        .unwrap();
    assert_eq!(keys(dfunnel), ["queries", "by_inference"]);
    // No trace material in either rendering.
    assert!(doc.get("traces").is_none());
    assert!(digest.get("traces").is_none());
}

/// Latency histograms are always on (they live in stats, not the span
/// recorder), so an untraced run still reports per-layer counts that
/// sum to the queries entering the funnel (inference rules decide
/// before the funnel and are attributed separately).
#[test]
fn funnel_histograms_populated_without_tracing() {
    let report = run(false, 1);
    let mut hist_queries = 0u64;
    let mut funnel_queries = 0u64;
    for m in &report.modules {
        if let Some(r) = &m.report {
            funnel_queries += (r.sat_stats.queries - r.sat_stats.by_inference) as u64;
            hist_queries += r.sat_stats.profile.queries();
        }
    }
    assert!(funnel_queries > 0, "workload produced no funnel queries");
    assert_eq!(hist_queries, funnel_queries);
}
