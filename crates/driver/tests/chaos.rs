//! Chaos suite: deterministic fault injection across the driver's three
//! fault-tolerance mechanisms — panic isolation, cooperative deadlines,
//! and crash-safe knowledge persistence — plus the budget-exhaustion
//! degradation ladder.
//!
//! Every fault is armed through `smartly_failpoint`, so each test is a
//! seeded, reproducible experiment: the same spec on the same workload
//! fires the same fault every run. The contract pinned here:
//!
//! * a fault costs at most the module it hit — non-faulted modules
//!   produce byte-identical netlists and reports;
//! * a faulted module degrades to its original netlist
//!   (`cells_after == cells_before`), never a half-optimized one;
//! * with every fail point disarmed, digests are byte-identical to a
//!   fault-free run (the fault layer is invisible when dormant).

use smartly_core::SharedCexBank;
use smartly_driver::persist::{load_state, save_state, KnowledgeState, StoreKey, SAVE_ATTEMPTS};
use smartly_driver::{
    emit_design, optimize_design, DriverOptions, ModuleOutcome, FP_MODULE_DEADLINE,
    FP_MODULE_PANIC, FP_SAVE_BACKOFF, FP_SAVE_IO, FP_SAVE_RELOAD, FP_SAVE_RENAME,
};
use smartly_failpoint as fail;
use smartly_netlist::Design;
use smartly_verilog::emit_verilog;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The fail-point registry is process-global; chaos tests serialize on
/// this lock and start from a disarmed registry.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn armed_guard() -> MutexGuard<'static, ()> {
    let g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::disarm_all();
    g
}

/// Restores the zero-cost path even when a test panics mid-arming.
struct DisarmOnDrop;
impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        fail::disarm_all();
    }
}

const MULTI: &str = r#"
module fig3_cone (input wire s, input wire r, input wire [7:0] a,
                  input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule

module case_chain (input wire [1:0] sel, input wire [7:0] p0,
                   input wire [7:0] p1, input wire [7:0] p2,
                   input wire [7:0] p3, output reg [7:0] q);
  always @(*) begin
    case (sel)
      2'b00: q = p0;
      2'b01: q = p1;
      2'b10: q = p2;
      default: q = p3;
    endcase
  end
endmodule

module datapath (input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] s, output wire lt);
  assign s = a + b;
  assign lt = a < b;
endmodule
"#;

fn compile(src: &str) -> Design {
    smartly_verilog::compile(src).expect("source compiles")
}

fn run(design: &mut Design, opts: &DriverOptions) -> smartly_driver::DesignReport {
    optimize_design(design, opts).expect("driver run succeeds")
}

/// An injected panic poisons exactly the targeted module: its original
/// netlist survives, every other module matches the fault-free run
/// byte-for-byte, and a disarmed rerun restores full digest identity.
#[test]
fn panic_failpoint_poisons_only_the_target_module() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let opts = DriverOptions {
        jobs: 1,
        ..Default::default()
    };

    // fault-free reference
    let mut clean = compile(MULTI);
    let clean_original = compile(MULTI);
    let clean_report = run(&mut clean, &opts);

    // armed run: panic inside case_chain only
    fail::arm(FP_MODULE_PANIC, "always@case_chain").expect("arm");
    let mut faulted = compile(MULTI);
    let report = run(&mut faulted, &opts);
    fail::disarm_all();

    assert_eq!(report.poisoned(), 1, "exactly one module poisoned");
    for (i, m) in report.modules.iter().enumerate() {
        if m.name == "case_chain" {
            let ModuleOutcome::Poisoned { message, backtrace } = &m.outcome else {
                panic!("case_chain should be poisoned, got {:?}", m.outcome);
            };
            assert!(
                message.contains("injected panic in module 'case_chain'"),
                "panic message preserved: {message}"
            );
            assert!(!backtrace.is_empty(), "backtrace captured at panic site");
            assert_eq!(m.cells_after, m.cells_before, "degrades to the original");
            assert!(m.report.is_none());
            // the netlist itself was restored, not half-rewritten
            assert_eq!(
                emit_verilog(&faulted.modules()[i]),
                emit_verilog(&clean_original.modules()[i]),
                "poisoned module must carry its pristine netlist"
            );
        } else {
            // blast radius zero: byte-identical to the fault-free run
            let clean_m = &clean_report.modules[i];
            assert_eq!(m.outcome, clean_m.outcome, "{}", m.name);
            assert_eq!(m.cells_after, clean_m.cells_after, "{}", m.name);
            assert_eq!(
                emit_verilog(&faulted.modules()[i]),
                emit_verilog(&clean.modules()[i]),
                "{} must be untouched by the fault next door",
                m.name
            );
        }
    }
    // the counter is timing-side only: present in the full JSON, absent
    // from the digest schema
    let timing = report.to_json();
    assert!(timing.get("modules_poisoned").is_some());

    // disarmed rerun: the fault layer is invisible when dormant
    let mut again = compile(MULTI);
    let again_report = run(&mut again, &opts);
    assert_eq!(again_report.digest(), clean_report.digest());
    assert_eq!(emit_design(&again), emit_design(&clean));
}

/// A forced deadline interrupts the CDCL search mid-flight and the
/// module degrades to `TimedOut` with its original netlist — the
/// cooperative path a wall-clock `--timeout-ms` takes, made
/// deterministic by counting polls instead of nanoseconds.
#[test]
fn forced_deadline_reverts_module_as_timed_out() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let opts = DriverOptions {
        jobs: 1,
        level: smartly_core::OptLevel::SatOnly,
        ..Default::default()
    };

    // reference: the stress module shrinks when search completes
    let mut clean = Design::from_modules(smartly_workloads::solver_stress(3, 9));
    let clean_report = run(&mut clean, &opts);
    assert!(
        clean_report.modules[0].cells_after < clean_report.modules[0].cells_before,
        "fault-free run must do real SAT work for this test to mean anything"
    );

    fail::arm(FP_MODULE_DEADLINE, "always@solver_stress").expect("arm");
    let mut faulted = Design::from_modules(smartly_workloads::solver_stress(3, 9));
    let original = Design::from_modules(smartly_workloads::solver_stress(3, 9));
    let report = run(&mut faulted, &opts);
    fail::disarm_all();

    let m = &report.modules[0];
    assert_eq!(
        m.outcome,
        ModuleOutcome::TimedOut {
            budget: Duration::ZERO
        },
        "forced deadline surfaces as the timeout ladder"
    );
    assert_eq!(m.cells_after, m.cells_before);
    assert_eq!(
        emit_verilog(&faulted.modules()[0]),
        emit_verilog(&original.modules()[0]),
        "interrupted module reverts to its pristine netlist"
    );

    // disarmed rerun: digest-identical to the fault-free reference
    let mut again = Design::from_modules(smartly_workloads::solver_stress(3, 9));
    let again_report = run(&mut again, &opts);
    assert_eq!(again_report.digest(), clean_report.digest());
}

/// Deadline trips landing *inside inprocessing* revert digest-safe. The
/// stress module demonstrably runs vivification and subsumption (the
/// clean run's counters prove it), and those passes poll the deadline
/// every few work items — so sweeping the forced trip point across the
/// run's ~170 polls lands expiries in CDCL search, mid-vivification, and
/// mid-subsumption-sweep. Wherever the poll lands, the contract is the
/// same: the module degrades to `TimedOut` with its pristine netlist — a
/// half-vivified clause database must never leak into a kept result.
#[test]
fn deadline_trips_during_inprocessing_revert_digest_safe() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let mk = || Design::from_modules(smartly_workloads::solver_stress(4, 10));
    let base = || DriverOptions {
        jobs: 1,
        level: smartly_core::OptLevel::SatOnly,
        ..Default::default()
    };

    // clean reference: this workload must actually cross inprocessing
    // boundaries, otherwise the sweep below never trips inside a pass
    let mut clean = mk();
    let clean_report = run(&mut clean, &base());
    let totals = clean_report.sat_totals();
    assert!(
        totals.solver_vivified_clauses > 0 && totals.solver_subsumed > 0,
        "stress workload must exercise vivification and subsumption: {}",
        totals.solver_summary()
    );

    // an armed deadline that never expires is invisible: same digest,
    // and the solver's poll counter shows inprocessing was being polled
    let counting = DriverOptions {
        external_deadline: Some(smartly_core::Deadline::after_checks(u64::MAX / 2)),
        ..base()
    };
    let mut counted = mk();
    let counted_report = run(&mut counted, &counting);
    assert_eq!(counted_report.digest(), clean_report.digest());
    let polls = counted_report.sat_totals().solver_deadline_checks;
    let search_polls = counted_report.sat_totals().solver_conflicts / 16;
    assert!(
        polls > search_polls,
        "inprocessing passes must contribute deadline polls beyond the \
         search loop's every-16-conflicts cadence: {polls} vs {search_polls}"
    );

    // sweep the trip point across the poll sequence
    let original = mk();
    for checks in [3u64, 40, 80, 110, 140, 165] {
        let opts = DriverOptions {
            external_deadline: Some(smartly_core::Deadline::after_checks(checks)),
            ..base()
        };
        let mut faulted = mk();
        let report = run(&mut faulted, &opts);
        let m = &report.modules[0];
        assert_eq!(
            m.outcome,
            ModuleOutcome::TimedOut {
                budget: Duration::ZERO
            },
            "trip at poll {checks} must surface as the timeout ladder"
        );
        assert_eq!(m.cells_after, m.cells_before, "trip at poll {checks}");
        assert_eq!(
            emit_verilog(&faulted.modules()[0]),
            emit_verilog(&original.modules()[0]),
            "trip at poll {checks} must revert to the pristine netlist"
        );
    }

    // disarmed rerun: digest-identical to the fault-free reference
    let mut again = mk();
    assert_eq!(run(&mut again, &base()).digest(), clean_report.digest());
}

/// The crash-safe save path: a hard IO fault fails the save but leaves
/// no temp litter and no damaged store; a transient fault is absorbed by
/// the retry ladder; the reload-after-save verification passes on a real
/// store.
#[test]
fn persist_failpoints_exercise_the_save_ladder() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let dir = std::env::temp_dir().join(format!("smartly_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("store.kb");
    let key = StoreKey::current(DriverOptions::default().pipeline.sat.conflict_budget);
    // the ladder below absorbs transient faults; skip its real
    // exponential sleeps so the suite exercises retries in microseconds
    fail::arm(FP_SAVE_BACKOFF, "always").expect("arm");

    // populate a state with real knowledge
    let state = std::sync::Arc::new(load_state(&path, &key, 8_192));
    let mut design = Design::from_modules(smartly_workloads::knowledge_probes(4, 3, 12));
    let opts = DriverOptions {
        jobs: 1,
        knowledge_state: Some(state.clone()),
        ..Default::default()
    };
    run(&mut design, &opts);

    // hard fault: every attempt fails, the error propagates, and neither
    // a temp file nor a damaged store is left behind
    fail::arm(FP_SAVE_IO, "always").expect("arm");
    let err = save_state(&path, &state, &key, 4_096).expect_err("injected IO error");
    assert!(err.to_string().contains("injected save IO error"));
    assert_eq!(
        fail::hit_count(FP_SAVE_IO),
        u64::from(SAVE_ATTEMPTS),
        "every retry re-attempts the write"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir).expect("readdir").collect();
    assert!(
        leftovers.is_empty(),
        "no temp litter or partial store after a failed save: {leftovers:?}"
    );

    // transient fault: first attempt fails, the retry ladder absorbs it
    fail::arm(FP_SAVE_IO, "hit:1").expect("arm");
    let report = save_state(&path, &state, &key, 4_096).expect("retry succeeds");
    assert_eq!(report.retries, 1, "one absorbed failure");
    assert!(report.entries_written() > 0);
    assert!(path.exists());
    fail::disarm_all();

    // a transient rename fault is absorbed the same way
    fail::arm(FP_SAVE_RENAME, "hit:1").expect("arm");
    let report = save_state(&path, &state, &key, 4_096).expect("retry succeeds");
    assert_eq!(report.retries, 1);
    fail::disarm_all();

    // reload-after-save verification: the published file must decode
    // against the same key
    fail::arm(FP_SAVE_RELOAD, "always").expect("arm");
    save_state(&path, &state, &key, 4_096).expect("reload verification passes");
    fail::disarm_all();

    // the store is genuinely loadable after all that
    let reloaded = load_state(&path, &key, 8_192);
    assert!(!reloaded.load.load_failed && !reloaded.load.stale_rejected);
    assert!(reloaded.load.loaded_shapes + reloaded.load.loaded_verdicts > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The retry backoff is injectable: with `persist.save.backoff` armed,
/// walking the whole 3-attempt ladder schedules its backoffs (the site
/// counts them) but sleeps for none of them, so chaos tests exercising
/// exhausted ladders spend no real wall-clock waiting.
#[test]
fn save_backoff_is_injectable_through_the_failpoint() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let path = std::env::temp_dir().join(format!("smartly_backoff_{}.kb", std::process::id()));
    let key = StoreKey::current(DriverOptions::default().pipeline.sat.conflict_budget);
    let state = KnowledgeState::cold(16);
    state.bank.publish(0xF00D, &[true, false]);

    fail::arm(FP_SAVE_IO, "always").expect("arm");
    fail::arm(FP_SAVE_BACKOFF, "always").expect("arm");
    save_state(&path, &state, &key, 64).expect_err("every attempt faulted");
    // the ladder scheduled exactly SAVE_ATTEMPTS - 1 backoffs...
    assert_eq!(
        fail::hit_count(FP_SAVE_BACKOFF),
        u64::from(SAVE_ATTEMPTS) - 1,
        "one backoff per absorbed failure"
    );
    // ...and the armed site swallowed every one of them (the sleep
    // branch was skipped each time)
    assert_eq!(
        fail::fired_count(FP_SAVE_BACKOFF),
        u64::from(SAVE_ATTEMPTS) - 1,
        "no injected backoff may fall through to a real sleep"
    );
    fail::disarm_all();

    // disarmed, the same ladder still works end to end (and the retry
    // count reporting is unchanged by the injection seam)
    fail::arm(FP_SAVE_IO, "hit:1").expect("arm");
    fail::arm(FP_SAVE_BACKOFF, "always").expect("arm");
    let report = save_state(&path, &state, &key, 64).expect("transient fault absorbed");
    assert_eq!(report.retries, 1);
    let _ = std::fs::remove_file(&path);
}

/// The budget-exhaustion ladder (no fail points involved): a conflict
/// budget too small for any query leaves every module byte-identical to
/// its input, publishes no verdicts, and — because exhaustion is memoed
/// but never concluded — a later full-budget run is digest-identical to
/// a fresh one.
#[test]
fn budget_exhaustion_degrades_without_publishing() {
    let _g = armed_guard();
    let _d = DisarmOnDrop;
    let starved = |jobs: usize| {
        let mut opts = DriverOptions {
            jobs,
            level: smartly_core::OptLevel::SatOnly,
            ..Default::default()
        };
        opts.pipeline.sat.conflict_budget = 1;
        let mut design = Design::from_modules(smartly_workloads::solver_stress(3, 9));
        run(&mut design, &opts)
    };
    let report = starved(1);
    assert_eq!(
        report.modules[0].cells_after, report.modules[0].cells_before,
        "a starved budget must not rewrite anything"
    );
    let totals = report.sat_totals();
    assert!(totals.queries > 0, "queries were actually attempted");
    assert_eq!(
        totals.verdicts_published, 0,
        "budget-limited verdicts must never publish"
    );
    // degradation itself is deterministic across worker counts
    assert_eq!(report.digest(), starved(4).digest());

    // and leaves no state that bends a later full-budget run
    let full = |_| {
        let opts = DriverOptions {
            jobs: 1,
            level: smartly_core::OptLevel::SatOnly,
            ..Default::default()
        };
        let mut design = Design::from_modules(smartly_workloads::solver_stress(3, 9));
        run(&mut design, &opts)
    };
    let a = full(0);
    let b = full(1);
    assert_eq!(a.digest(), b.digest());
    assert!(
        a.modules[0].cells_after < a.modules[0].cells_before,
        "full budget optimizes"
    );
}
