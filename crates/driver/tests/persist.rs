//! Integration tests for the persistent cross-run knowledge store:
//! save/load round trips, header invalidation, corruption handling, and
//! the warm-start determinism contract (warm-run netlists and digests
//! byte-identical to cold runs).

use smartly_driver::persist::{load_state, save_state, KnowledgeState, StoreKey};
use smartly_driver::{emit_design, optimize_design, DriverOptions};
use smartly_netlist::Design;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique temp path per test (the suite runs tests concurrently).
fn temp_kb(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartly_{tag}_{}.kb", std::process::id()))
}

fn probes_design() -> Design {
    // seeded smartly-workloads near-miss variants: identical cone
    // shapes on different nets, SAT-only rare polarity — the workload
    // the knowledge store exists for
    Design::from_modules(smartly_workloads::knowledge_probes(6, 3, 12))
}

fn default_store_key() -> StoreKey {
    StoreKey::current(DriverOptions::default().pipeline.sat.conflict_budget)
}

fn run_with(
    state: Option<Arc<KnowledgeState>>,
    jobs: usize,
) -> (smartly_driver::DesignReport, String) {
    let mut design = probes_design();
    let opts = DriverOptions {
        jobs,
        knowledge_state: state,
        ..Default::default()
    };
    let report = optimize_design(&mut design, &opts).expect("driver");
    let emitted = emit_design(&design);
    (report, emitted)
}

/// Cold run → save → warm run: the warm run answers queries from disk
/// (`kb_disk_hits > 0`, `by_disk_verdict > 0`) and still produces the
/// byte-identical netlist and digest, at one and at four workers.
#[test]
fn warm_runs_reproduce_cold_netlists_and_digests() {
    let path = temp_kb("warm_diff");
    let key = default_store_key();

    // cold reference run, attached to a (missing-file) state
    let cold_state = Arc::new(load_state(&path, &key, 8_192));
    assert_eq!(
        cold_state.load.loaded_shapes + cold_state.load.loaded_verdicts,
        0
    );
    let (cold_report, cold_verilog) = run_with(Some(cold_state.clone()), 1);
    let cold_digest = cold_report.digest();
    let saved = save_state(&path, &cold_state, &key, 4_096).expect("save");
    assert!(saved.entries_written() > 0, "the run produced knowledge");

    for jobs in [1, 4] {
        let warm_state = Arc::new(load_state(&path, &key, 8_192));
        assert!(
            warm_state.load.loaded_verdicts > 0,
            "verdicts were persisted"
        );
        let (warm_report, warm_verilog) = run_with(Some(warm_state), jobs);

        // the determinism contract: byte-identical results cold vs warm
        assert_eq!(warm_report.digest(), cold_digest, "jobs {jobs}");
        assert_eq!(warm_verilog, cold_verilog, "jobs {jobs}");

        // and the warm start actually did something
        let kb = warm_report.kb.as_ref().expect("kb counters attached");
        assert!(kb.disk_hits > 0, "jobs {jobs}: no disk hits");
        let disk_verdicts: usize = warm_report
            .modules
            .iter()
            .filter_map(|m| m.report.as_ref())
            .map(|r| r.sat_stats.by_disk_verdict)
            .sum();
        assert!(disk_verdicts > 0, "jobs {jobs}: no disk-verdict answers");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Round trip: what a run published is what a reload serves, and a
/// second save carries it forward unchanged.
#[test]
fn save_load_round_trips_run_knowledge() {
    let path = temp_kb("roundtrip");
    let key = default_store_key();
    let state = Arc::new(load_state(&path, &key, 8_192));
    let _ = run_with(Some(state.clone()), 1);
    let first = save_state(&path, &state, &key, 4_096).expect("save");

    let reloaded = Arc::new(load_state(&path, &key, 8_192));
    assert_eq!(
        reloaded.load.loaded_shapes + reloaded.load.loaded_verdicts,
        first.entries_written(),
        "every written entry loads back"
    );
    // saving the reloaded (untouched) state preserves the entry set
    let second = save_state(&path, &reloaded, &key, 4_096).expect("save");
    assert_eq!(second.entries_written(), first.entries_written());
    std::fs::remove_file(&path).unwrap();
}

/// A version bump invalidates the whole store: the loader reports
/// stale, loads nothing, and the run proceeds cold.
#[test]
fn version_mismatch_rejects_the_store() {
    let path = temp_kb("version");
    let key = default_store_key();
    let state = Arc::new(load_state(&path, &key, 8_192));
    let _ = run_with(Some(state.clone()), 1);
    save_state(&path, &state, &key, 4_096).expect("save");

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] ^= 0xFF; // format version, little-endian low byte
    std::fs::write(&path, &bytes).unwrap();

    let stale = load_state(&path, &key, 8_192);
    assert!(stale.load.stale_rejected);
    assert!(!stale.load.load_failed);
    assert!(stale.load.detail.contains("format version"));
    assert_eq!(stale.load.loaded_shapes + stale.load.loaded_verdicts, 0);
    std::fs::remove_file(&path).unwrap();
}

/// A different cell-kind encoding fingerprint (a future enum change)
/// invalidates the store the same way.
#[test]
fn encoding_fingerprint_mismatch_rejects_the_store() {
    let path = temp_kb("fingerprint");
    let key = default_store_key();
    let state = Arc::new(load_state(&path, &key, 8_192));
    let _ = run_with(Some(state.clone()), 1);
    save_state(&path, &state, &key, 4_096).expect("save");

    let skewed = StoreKey {
        kind_fingerprint: key.kind_fingerprint ^ 1,
        ..key
    };
    let stale = load_state(&path, &skewed, 8_192);
    assert!(stale.load.stale_rejected);
    assert!(stale.load.detail.contains("fingerprint"));

    // so does a conflict-budget change
    let other_budget = StoreKey {
        conflict_budget: key.conflict_budget + 1,
        ..key
    };
    let stale = load_state(&path, &other_budget, 8_192);
    assert!(stale.load.stale_rejected);
    assert!(stale.load.detail.contains("conflict budget"));
    std::fs::remove_file(&path).unwrap();
}

/// Truncation and bit flips degrade to a clean cold start with the
/// failure counters set — never an error, never a partial load.
#[test]
fn damaged_stores_fall_back_cold() {
    let path = temp_kb("damage");
    let key = default_store_key();
    let state = Arc::new(load_state(&path, &key, 8_192));
    let _ = run_with(Some(state.clone()), 1);
    save_state(&path, &state, &key, 4_096).expect("save");
    let pristine = std::fs::read(&path).unwrap();

    // truncated to a header prefix
    std::fs::write(&path, &pristine[..32.min(pristine.len())]).unwrap();
    let t = load_state(&path, &key, 8_192);
    assert!(t.load.load_failed, "truncation is a load failure");
    assert_eq!(t.load.loaded_shapes + t.load.loaded_verdicts, 0);

    // one flipped payload bit
    let mut flipped = pristine.clone();
    let mid = 40 + (pristine.len() - 40) / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    let f = load_state(&path, &key, 8_192);
    assert!(f.load.load_failed, "bit flip is a load failure");
    assert!(f.load.detail.contains("checksum"));

    // and a damaged-state run still optimizes, reporting the failure
    let (report, _) = run_with(Some(Arc::new(f)), 1);
    let kb = report.kb.expect("kb counters attached");
    assert!(kb.load_failed);
    assert_eq!(kb.disk_hits, 0);
    std::fs::remove_file(&path).unwrap();
}
