//! Medium-scale determinism and conflict-regime tests.
//!
//! `Scale::Medium` is the smallest conflict-bearing corpus scale: its
//! adder-identity miter cones force real CDCL search, so solver-behavior
//! assertions stop depending on the `solver_stress` side channel alone.
//! These tests pin the contracts the scale ships with — reproducible
//! generation, `conflicts > 0`, and digest byte-identity across `--jobs`
//! and warm/cold knowledge — on a compact Medium block so the suite
//! stays debug-priced; the full-corpus CLI ladder runs in CI's Medium
//! smoke against the release binary.

use smartly_driver::persist::{load_state, save_state, KnowledgeState, StoreKey};
use smartly_driver::{emit_design, optimize_design, DriverOptions};
use smartly_netlist::Design;
use smartly_workloads::{public_corpus, DesignSpec, Scale};
use std::path::PathBuf;
use std::sync::Arc;

/// A unique temp path per test (the suite runs tests concurrently).
fn temp_kb(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartly_{tag}_{}.kb", std::process::id()))
}

/// A compact conflict-bearing block: the same structural recipe as the
/// public corpus, shrunk to debug-build test price. At `Scale::Medium`
/// the two `arith_cones` become adder-identity miters whose UNSAT
/// proofs force real conflict-driven search.
fn medium_block() -> DesignSpec {
    DesignSpec {
        name: "medium_block".into(),
        description: "compact Medium-scale conflict-bearing block".into(),
        seed: 0x3ED1,
        data_width: 8,
        case_blocks: 4,
        case_sel_width: (2, 4),
        case_arm_fill: 0.7,
        case_leaf_sharing: 0.4,
        casez_fraction: 0.25,
        case_structure: 0.4,
        dep_cones: 4,
        dep_implied_fraction: 0.7,
        same_sig_cones: 2,
        same_sig_depth: (2, 4),
        redundancy_ops: 3,
        datapath_ops: 3,
        register_banks: 1,
        arith_cones: 2,
    }
}

fn medium_design() -> Design {
    let m = medium_block()
        .generate(Scale::Medium)
        .compile()
        .expect("medium block compiles");
    m.validate().expect("medium block validates");
    Design::from_modules(vec![m])
}

fn run_with(
    state: Option<Arc<KnowledgeState>>,
    jobs: usize,
) -> (smartly_driver::DesignReport, String) {
    let mut design = medium_design();
    let opts = DriverOptions {
        jobs,
        knowledge_state: state,
        ..Default::default()
    };
    let report = optimize_design(&mut design, &opts).expect("driver");
    let emitted = emit_design(&design);
    (report, emitted)
}

/// Seeded generation at `Medium` is reproducible: two independent
/// corpus constructions yield byte-identical Verilog for every case,
/// and every case carries the conflict-driving miter cones.
#[test]
fn medium_generation_is_reproducible() {
    let a = public_corpus(Scale::Medium);
    let b = public_corpus(Scale::Medium);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.source, y.source, "{} must regenerate identically", x.name);
        assert!(
            x.source.contains("wire mc_"),
            "{} must carry arith miter cones at Medium",
            x.name
        );
    }
}

/// A Medium-scale block drives real CDCL conflicts — the property that
/// distinguishes it from Tiny/Small/Paper, where the funnel settles
/// everything above the solver.
#[test]
fn medium_drives_conflicts() {
    let (report, _) = run_with(None, 1);
    let mut queries = 0usize;
    let mut conflicts = 0u64;
    for m in &report.modules {
        if let Some(r) = &m.report {
            queries += r.sat_stats.queries;
            conflicts += r.sat_stats.solver_conflicts;
        }
    }
    assert!(queries > 0, "medium block must raise queries");
    assert!(
        conflicts > 0,
        "medium must force conflict-driven search (got {conflicts} conflicts over {queries} queries)",
    );
}

/// The digest and the emitted netlist are byte-identical at one and
/// four workers: every digest counter is scheduling-invariant.
#[test]
fn medium_digest_identical_across_jobs() {
    let (one_report, one_verilog) = run_with(None, 1);
    let (four_report, four_verilog) = run_with(None, 4);
    assert_eq!(
        one_report.digest(),
        four_report.digest(),
        "medium digest must not depend on --jobs"
    );
    assert_eq!(one_verilog, four_verilog, "netlists must match across jobs");
}

/// Warm-start knowledge answers Medium queries from disk without
/// perturbing the digest: cold and warm digests (and netlists) are
/// byte-identical and the warm state reports `disk_hits > 0`.
#[test]
fn medium_digest_identical_warm_and_cold() {
    let path = temp_kb("medium_warm");
    let key = StoreKey::current(DriverOptions::default().pipeline.sat.conflict_budget);

    let cold_state = Arc::new(load_state(&path, &key, 8_192));
    let (cold_report, cold_verilog) = run_with(Some(cold_state.clone()), 1);
    let saved = save_state(&path, &cold_state, &key, 4_096).expect("save");
    assert!(saved.entries_written() > 0, "medium run produced knowledge");

    let warm_state = Arc::new(load_state(&path, &key, 8_192));
    assert!(
        warm_state.load.loaded_shapes + warm_state.load.loaded_verdicts > 0,
        "store must load warm"
    );
    let (warm_report, warm_verilog) = run_with(Some(warm_state.clone()), 4);
    assert!(
        warm_state.kb_report().disk_hits > 0,
        "warm run must answer from disk"
    );
    assert_eq!(
        cold_report.digest(),
        warm_report.digest(),
        "warm knowledge must not perturb the medium digest"
    );
    assert_eq!(cold_verilog, warm_verilog, "netlists must match warm/cold");
    let _ = std::fs::remove_file(&path);
}
