//! Reproduces the paper's §IV-B industrial experiment: selection-heavy
//! designs where the Yosys baseline finds almost nothing and smaRTLy
//! removes dramatically more AIG area.

use smartly_core::{OptLevel, Pipeline};
use smartly_workloads::{industrial_corpus, IndustrialSpec, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .as_deref()
        .and_then(Scale::from_name)
        .unwrap_or(Scale::Paper);
    let spec = IndustrialSpec {
        scale,
        ..Default::default()
    };
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>10}",
        "point", "original", "yosys", "smartly", "yosys%", "smartly%", "extra-vs-yosys%"
    );
    let mut extra_sum = 0.0;
    let corpus = industrial_corpus(&spec);
    let n = corpus.len();
    for case in corpus {
        let mut base = case.compile().expect("generated Verilog is valid");
        let mut full = base.clone();
        let pipe = Pipeline::default();
        let rb = pipe.run(&mut base, OptLevel::Baseline).expect("baseline");
        let rf = pipe.run(&mut full, OptLevel::Full).expect("full");
        let yosys_pct = 100.0 * (1.0 - rb.area_after as f64 / rb.area_before as f64);
        let smartly_pct = 100.0 * (1.0 - rf.area_after as f64 / rf.area_before as f64);
        let extra = 100.0 * (1.0 - rf.area_after as f64 / rb.area_after as f64);
        extra_sum += extra;
        println!(
            "{:8} {:>9} {:>9} {:>9} {:>7.1}% {:>7.1}% {:>9.1}%",
            case.name, rb.area_before, rb.area_after, rf.area_after, yosys_pct, smartly_pct, extra
        );
    }
    println!(
        "\naverage extra AIG-area reduction vs Yosys: {:.1}% (paper: 47.2%)",
        extra_sum / n as f64
    );
}
