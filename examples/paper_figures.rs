//! Reproduces the paper's motivating figures end-to-end from Verilog:
//!
//! * Fig. 1 — nested mux with the *same* control: the Yosys baseline
//!   already collapses it;
//! * Fig. 3 — control decided through an OR gate: the baseline is blind,
//!   the smaRTLy SAT pass removes it;
//! * Listings 1 & 2 — case chains rebuilt through the ADD.
//!
//! Run with `cargo run --example paper_figures`.

use smartly_core::{OptLevel, Pipeline};
use smartly_workloads::paper_figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:22} {:>8} {:>8} {:>8} {:>8}  verified",
        "figure", "orig", "yosys", "smartly", "extra%"
    );
    for case in paper_figures() {
        let mut baseline = case.compile()?;
        let mut full = baseline.clone();
        let pipeline = Pipeline {
            verify: true,
            ..Default::default()
        };
        let rb = pipeline.run(&mut baseline, OptLevel::Baseline)?;
        let rf = pipeline.run(&mut full, OptLevel::Full)?;
        let extra = if rb.area_after > 0 {
            100.0 * (1.0 - rf.area_after as f64 / rb.area_after as f64)
        } else {
            0.0
        };
        let verified = matches!(
            (rb.equivalence.as_ref(), rf.equivalence.as_ref()),
            (
                Some(smartly_aig::EquivResult::Equivalent),
                Some(smartly_aig::EquivResult::Equivalent)
            )
        );
        println!(
            "{:22} {:>8} {:>8} {:>8} {:>7.1}%  {}",
            case.name, rb.area_before, rb.area_after, rf.area_after, extra, verified
        );
    }
    Ok(())
}
