//! Quickstart: compile a small Verilog design, run the full smaRTLy
//! pipeline, and report the AIG-area savings with equivalence checking.
//!
//! Run with `cargo run --example quickstart`.

use smartly_aig::EquivResult;
use smartly_core::{OptLevel, Pipeline};
use smartly_verilog::compile;

const DESIGN: &str = r#"
// A byte-lane selector with a derived enable: contains both smaRTLy
// opportunities — a case statement (restructuring) and a control signal
// that is logically implied by an ancestor (SAT inferencing).
module lane_select (
  input wire [1:0] lane,
  input wire       en,
  input wire       force_on,
  input wire [7:0] b0, input wire [7:0] b1,
  input wire [7:0] b2, input wire [7:0] b3,
  output reg [7:0] out
);
  wire active = en | force_on;
  always @(*) begin
    out = 8'd0;
    if (en) begin
      // `active` is always 1 here: the inner mux is redundant
      if (active) begin
        case (lane)
          2'b00: out = b0;
          2'b01: out = b1;
          2'b10: out = b2;
          default: out = b3;
        endcase
      end else out = 8'hff;
    end
  end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = compile(DESIGN)?;
    let mut module = design.into_top().expect("one module");
    println!("cells after elaboration: {}", module.live_cell_count());
    println!("{}", module.stats());

    let pipeline = Pipeline {
        verify: true,
        ..Default::default()
    };
    let report = pipeline.run(&mut module, OptLevel::Full)?;

    println!("AIG area before: {}", report.area_before);
    println!("AIG area after:  {}", report.area_after);
    println!("reduction:       {:.1}%", 100.0 * report.reduction());
    println!(
        "SAT pass: {} rewrites ({} by inference, {} by simulation, {} by SAT)",
        report.sat_rewrites,
        report.sat_stats.by_inference,
        report.sat_stats.by_sim,
        report.sat_stats.by_sat,
    );
    println!(
        "restructuring: {} trees rebuilt, {} muxes -> {}, {} eq cells freed",
        report.rebuild_stats.rebuilt,
        report.rebuild_stats.muxes_removed,
        report.rebuild_stats.muxes_added,
        report.rebuild_stats.eqs_freed,
    );
    match report.equivalence {
        Some(EquivResult::Equivalent) => println!("equivalence check: PASS"),
        other => println!("equivalence check: {other:?}"),
    }
    println!("\nfinal netlist:\n{}", module.stats());
    Ok(())
}
