//! Walkthrough of muxtree restructuring on the paper's Listings 1 and 2:
//! how the `case` chain becomes an ADD and comes back as three muxes with
//! the `eq` comparators freed (paper Figs. 5–7), and why the greedy bit
//! order matters (3 vs. 7 muxes on Listing 2).
//!
//! Run with `cargo run --example case_rebuild`.

use smartly_add::{Add, FunctionTable};
use smartly_core::{OptLevel, Pipeline};
use smartly_workloads::paper_figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------ netlist-level view
    for case in paper_figures() {
        if !case.name.starts_with("listing") {
            continue;
        }
        let mut module = case.compile()?;
        let before = module.stats();
        let pipeline = Pipeline {
            verify: true,
            ..Default::default()
        };
        let report = pipeline.run(&mut module, OptLevel::RebuildOnly)?;
        let after = module.stats();
        println!("== {} ==", case.name);
        println!(
            "  muxes {} -> {}, eq cells {} -> {}",
            before.count("mux"),
            after.count("mux"),
            before.count("eq"),
            after.count("eq"),
        );
        println!(
            "  AIG area {} -> {} ({:.1}% smaller), equivalence: {:?}",
            report.area_before,
            report.area_after,
            100.0 * report.reduction(),
            report.equivalence,
        );
    }

    // ------------------------------------------------ ADD-level view
    // Listing 2's function: casez (s) 1zz:p0 / 01z:p1 / 001:p2 / default:p3
    let table = FunctionTable::from_priority_cubes(
        3,
        3,
        &[
            (vec![None, None, Some(true)], 0),
            (vec![None, Some(true), Some(false)], 1),
            (vec![Some(true), Some(false), Some(false)], 2),
        ],
    );
    let greedy = Add::build_greedy(&table);
    println!("\nListing 2 as an ADD:");
    println!(
        "  greedy bit order: {} mux nodes, depth {}",
        greedy.node_count(),
        greedy.depth()
    );
    for order in [[2u32, 1, 0], [0, 1, 2]] {
        let fixed = Add::build_with_order(&table, &order);
        println!(
            "  fixed order S{}->S{}->S{}: {} mux nodes (paper: good order 3, bad order 7)",
            order[0],
            order[1],
            order[2],
            fixed.node_count()
        );
    }
    Ok(())
}
