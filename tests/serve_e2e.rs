//! The daemon's acceptance gate, with the *real* optimizer behind it:
//!
//! 1. **Digest parity** — a design optimized through an in-process
//!    `smartly-server` daemon (driver-backed runner, resident
//!    knowledge state) produces a digest byte-identical to the direct
//!    `optimize_source` path `smartly opt` uses.
//! 2. **Crash replay** — a journal holding an accepted-but-unfinished
//!    job (what a SIGKILL mid-run leaves behind) is replayed on boot
//!    and re-runs to that same digest.
//!
//! The CI "Serve smoke" step repeats the same two checks across real
//! processes and a real SIGTERM; this test pins them hermetically.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smartly_driver::{optimize_source, DriverOptions, KnowledgeState};
use smartly_server::journal::{Journal, Record};
use smartly_server::{wire, JobRunner, JobSpec, RunOutcome, Server, ServerConfig, ServerHandle};

/// A multi-module design with a memo-duplicate and real SAT work, so
/// the digest covers the interesting driver paths.
const DESIGN: &str = r#"
module mux_redundant (input wire s, input wire [3:0] a, input wire [3:0] b,
                      output reg [3:0] y);
  always @(*) begin
    if (s) begin if (s) y = a; else y = b; end else y = b;
  end
endmodule
module mux_copy (input wire s, input wire [3:0] a, input wire [3:0] b,
                 output reg [3:0] y);
  always @(*) begin
    if (s) begin if (s) y = a; else y = b; end else y = b;
  end
endmodule
module add_pair (input wire [3:0] p, input wire [3:0] q,
                 output wire [4:0] sum);
  assign sum = p + q;
endmodule
"#;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartly_e2e_{tag}_{}", std::process::id()))
}

/// The same runner shape `smartly serve` wires in: every job goes
/// through `optimize_source` against one resident knowledge state.
struct DriverRunner {
    knowledge: Arc<KnowledgeState>,
}

impl JobRunner for DriverRunner {
    fn run(&self, spec: &JobSpec, deadline: &smartly_core::Deadline) -> RunOutcome {
        let opts = DriverOptions {
            jobs: 1,
            knowledge_state: Some(Arc::clone(&self.knowledge)),
            external_deadline: Some(deadline.clone()),
            ..DriverOptions::default()
        };
        match optimize_source(&spec.source, &opts) {
            Ok(job) => RunOutcome::Done {
                modules_poisoned: job.report.poisoned() as u64,
                digest: job.digest,
                verilog: job.verilog,
            },
            Err(e) => RunOutcome::Failed {
                error: e.to_string(),
            },
        }
    }
}

fn boot(
    socket: &Path,
    journal: Option<&Path>,
) -> (
    std::thread::JoinHandle<smartly_server::DrainReport>,
    ServerHandle,
) {
    let mut config = ServerConfig::new(socket);
    config.journal = journal.map(Path::to_path_buf);
    let runner = Arc::new(DriverRunner {
        knowledge: Arc::new(KnowledgeState::cold(
            DriverOptions::default().knowledge_capacity,
        )),
    });
    let server = Server::bind(config, runner).expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let deadline = Instant::now() + Duration::from_secs(10);
    while UnixStream::connect(socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(10));
    }
    (thread, handle)
}

fn rpc(socket: &Path, request: &wire::Value) -> wire::Value {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{}\n", request.render()).as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    wire::parse(&response).expect("response parses")
}

fn submit(socket: &Path, source: &str) -> u64 {
    let mut req = wire::Value::object();
    req.set("cmd", wire::Value::Str("submit".into()));
    req.set("source", wire::Value::Str(source.into()));
    let resp = rpc(socket, &req);
    assert_eq!(
        resp.get("ok"),
        Some(&wire::Value::Bool(true)),
        "submit accepted: {resp:?}"
    );
    resp.get("id").and_then(wire::Value::as_u64).expect("id")
}

fn fetch(socket: &Path, id: u64, want_verilog: bool) -> wire::Value {
    let mut req = wire::Value::object();
    req.set("cmd", wire::Value::Str("result".into()));
    req.set("id", wire::Value::UInt(id));
    req.set("verilog", wire::Value::Bool(want_verilog));
    rpc(socket, &req)
}

fn str_of<'v>(v: &'v wire::Value, key: &str) -> &'v str {
    v.get(key).and_then(wire::Value::as_str).unwrap_or("")
}

/// The reference artifacts: exactly what `smartly opt` produces.
fn reference() -> (String, String) {
    let job = optimize_source(DESIGN, &DriverOptions::default()).expect("reference run");
    (job.digest, job.verilog)
}

#[test]
fn served_digest_is_byte_identical_to_the_cli_path() {
    let socket = tmp("parity.sock");
    let (thread, handle) = boot(&socket, None);

    let id = submit(&socket, DESIGN);
    let result = fetch(&socket, id, true);
    assert_eq!(str_of(&result, "status"), "done", "{result:?}");

    let (ref_digest, ref_verilog) = reference();
    assert_eq!(
        str_of(&result, "digest"),
        ref_digest,
        "daemon and CLI digests must be byte-identical"
    );
    assert_eq!(
        str_of(&result, "verilog"),
        ref_verilog,
        "emitted Verilog matches too"
    );
    assert_eq!(result.get("modules_poisoned"), Some(&wire::Value::UInt(0)));

    handle.shutdown();
    let report = thread.join().expect("join");
    assert_eq!(report.completed, 1);
    assert!(report.clean);
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn crash_replay_reruns_to_the_same_digest() {
    let socket = tmp("replay.sock");
    let journal = tmp("replay.wal");
    let _ = std::fs::remove_file(&journal);

    // simulate the SIGKILL moment: the journal holds an accepted job
    // whose completion record never made it to disk
    {
        let (mut j, _) = Journal::open(&journal).expect("open");
        j.append(&Record::Accepted {
            id: 1,
            source: DESIGN.to_string(),
            level: "full".into(),
            timeout_ms: 0,
            verify: false,
        })
        .expect("append");
    }

    let (thread, handle) = boot(&socket, Some(&journal));
    assert_eq!(handle.counters().replayed_requeued, 1);
    let result = fetch(&socket, 1, false);
    assert_eq!(str_of(&result, "status"), "done", "{result:?}");
    let (ref_digest, _) = reference();
    assert_eq!(
        str_of(&result, "digest"),
        ref_digest,
        "the re-run after a crash converges on the digest the lost run \
         would have produced"
    );
    handle.shutdown();
    thread.join().expect("join");

    // and a *second* restart now replays the completion record instead
    // of running anything: same digest, served from the journal
    let socket2 = tmp("replay2.sock");
    let (thread, handle) = boot(&socket2, Some(&journal));
    assert_eq!(handle.counters().replayed_completed, 1);
    assert_eq!(handle.counters().replayed_requeued, 0);
    let result = fetch(&socket2, 1, false);
    assert_eq!(str_of(&result, "digest"), ref_digest);
    handle.shutdown();
    thread.join().expect("join");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&socket2);
}
