//! Round-trip tests for the structural Verilog emitter: *netlist → emit →
//! parse → elaborate* must produce an equivalent netlist, both for raw
//! elaborations and for fully optimized designs.

use smartly_aig::{check_equiv, EquivOptions, EquivResult};
use smartly_core::{OptLevel, Pipeline};
use smartly_verilog::{compile, emit_verilog};
use smartly_workloads::{paper_figures, public_corpus, Scale};

fn assert_round_trip(module: &smartly_netlist::Module, label: &str) {
    let emitted = emit_verilog(module);
    let back = compile(&emitted)
        .unwrap_or_else(|e| panic!("{label}: emitted source must parse: {e}\n{emitted}"))
        .into_top()
        .expect("module");
    back.validate()
        .unwrap_or_else(|e| panic!("{label}: reparsed netlist invalid: {e}"));
    let r = check_equiv(module, &back, &EquivOptions::default())
        .unwrap_or_else(|e| panic!("{label}: cec failed to run: {e}"));
    assert_eq!(
        r,
        EquivResult::Equivalent,
        "{label}: round trip must preserve the function"
    );
}

#[test]
fn paper_figures_round_trip() {
    for case in paper_figures() {
        let m = case.compile().expect("compiles");
        assert_round_trip(&m, &case.name);
    }
}

#[test]
fn optimized_netlists_round_trip() {
    for case in public_corpus(Scale::Tiny).into_iter().take(4) {
        let mut m = case.compile().expect("compiles");
        Pipeline::default()
            .run(&mut m, OptLevel::Full)
            .expect("pipeline");
        assert_round_trip(&m, &case.name);
    }
}

#[test]
fn sequential_design_round_trips() {
    let src = "module seq (input wire clk, input wire rst, input wire [3:0] d,
                           output reg [3:0] q, output wire [3:0] next);
                 assign next = q + d;
                 always @(posedge clk) begin
                   if (rst) q <= 4'd0; else q <= next;
                 end
               endmodule";
    let m = compile(src).expect("parses").into_top().expect("module");
    assert_round_trip(&m, "seq");
}
