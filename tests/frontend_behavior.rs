//! Functional checks of the Verilog frontend: compiled designs must
//! compute the same values as closed-form Rust models.

use smartly_sim::{compile, BitSim};
use smartly_verilog::compile as vcompile;

fn build(src: &str) -> smartly_sim::Program {
    let m = vcompile(src)
        .expect("valid source")
        .into_top()
        .expect("module");
    m.validate().expect("well-formed");
    compile(&m).expect("compiles for simulation")
}

#[test]
fn adder_with_carry() {
    let prog = build(
        "module add (input wire [7:0] a, input wire [7:0] b, output wire [8:0] y);
           assign y = {1'b0, a} + {1'b0, b};
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    let av = [0u64, 1, 255, 200, 128];
    let bv = [0u64, 1, 255, 100, 128];
    sim.set_input("a", &av);
    sim.set_input("b", &bv);
    sim.eval_comb();
    let y = sim.output("y");
    for k in 0..av.len() {
        assert_eq!(y[k], av[k] + bv[k], "lane {k}");
    }
}

#[test]
fn alu_case_statement() {
    let prog = build(
        "module alu (input wire [1:0] op, input wire [7:0] a, input wire [7:0] b,
                     output reg [7:0] y);
           always @(*) begin
             case (op)
               2'd0: y = a + b;
               2'd1: y = a - b;
               2'd2: y = a & b;
               default: y = a ^ b;
             endcase
           end
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    let a = 0xA5u64;
    let b = 0x3Cu64;
    sim.set_input("a", &[a; 4]);
    sim.set_input("b", &[b; 4]);
    sim.set_input("op", &[0, 1, 2, 3]);
    sim.eval_comb();
    let y = sim.output("y");
    assert_eq!(y[0], (a + b) & 0xff);
    assert_eq!(y[1], a.wrapping_sub(b) & 0xff);
    assert_eq!(y[2], a & b);
    assert_eq!(y[3], a ^ b);
}

#[test]
fn priority_encoder_casez() {
    let prog = build(
        "module enc (input wire [3:0] req, output reg [1:0] grant, output reg valid);
           always @(*) begin
             valid = 1'b1;
             casez (req)
               4'bzzz1: grant = 2'd0;
               4'bzz10: grant = 2'd1;
               4'bz100: grant = 2'd2;
               4'b1000: grant = 2'd3;
               default: begin grant = 2'd0; valid = 1'b0; end
             endcase
           end
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    let reqs: Vec<u64> = (0..16).collect();
    sim.set_input("req", &reqs);
    sim.eval_comb();
    let grant = sim.output("grant");
    let valid = sim.output("valid");
    for (k, &req) in reqs.iter().enumerate() {
        if req == 0 {
            assert_eq!(valid[k], 0, "req=0");
        } else {
            assert_eq!(valid[k], 1, "req={req}");
            assert_eq!(grant[k], req.trailing_zeros() as u64, "req={req}");
        }
    }
}

#[test]
fn shift_register_sequential() {
    let prog = build(
        "module shift (input wire clk, input wire d, output wire [3:0] q);
           reg [3:0] r;
           always @(posedge clk) r <= {r[2:0], d};
           assign q = r;
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0];
    let mut model = 0u64;
    for &bit in &pattern {
        sim.set_input("d", &[bit]);
        sim.tick();
        model = ((model << 1) | bit) & 0xf;
        assert_eq!(sim.output("q")[0], model);
    }
}

#[test]
fn parameterized_widths() {
    let prog = build(
        "module p #(parameter W = 12) (input wire [W-1:0] a, output wire [W-1:0] y);
           assign y = a + {{(W-1){1'b0}}, 1'b1};
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    sim.set_input("a", &[0xFFF, 5]);
    sim.eval_comb();
    assert_eq!(sim.output("y"), vec![0, 6]); // wraps at 12 bits
}

#[test]
fn ternary_and_reductions() {
    let prog = build(
        "module t (input wire [7:0] a, output wire y, output wire [7:0] z);
           assign y = &a | ^a;
           assign z = (|a) ? ~a : 8'hAA;
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    sim.set_input("a", &[0xFF, 0x01, 0x00]);
    sim.eval_comb();
    let y = sim.output("y");
    assert_eq!(y[0], 1); // &a = 1
    assert_eq!(y[1], 1); // ^a = 1
    assert_eq!(y[2], 0);
    let z = sim.output("z");
    assert_eq!(z[0], 0x00);
    assert_eq!(z[1], 0xFE);
    assert_eq!(z[2], 0xAA);
}

#[test]
fn dynamic_bit_select() {
    let prog = build(
        "module d (input wire [7:0] a, input wire [2:0] i, output wire y);
           assign y = a[i];
         endmodule",
    );
    let mut sim = BitSim::new(&prog);
    let a = 0b1010_0110u64;
    sim.set_input("a", &[a; 8]);
    sim.set_input("i", &(0..8u64).collect::<Vec<_>>());
    sim.eval_comb();
    let y = sim.output("y");
    for (k, bit) in y.iter().enumerate().take(8) {
        assert_eq!(*bit, (a >> k) & 1, "bit {k}");
    }
}

#[test]
fn malformed_sources_are_rejected() {
    for bad in [
        "module m(input a output y); endmodule",      // missing comma
        "module m(input a); assign y = a; endmodule", // unknown signal
        "module m(input [3:0] a, output y); assign y = a[7]; endmodule", // range
        "module m(input a, output y); assign y = a +; endmodule", // syntax
        "module m(input a, output y); always @(negedge a) y = 1; endmodule", // negedge
    ] {
        assert!(vcompile(bad).is_err(), "must reject: {bad}");
    }
}
