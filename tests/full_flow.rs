//! Cross-crate flows over the benchmark corpus: every optimization level
//! on every public case, verified with the AIG miter.

use smartly_aig::EquivResult;
use smartly_core::{OptLevel, Pipeline};
use smartly_workloads::{industrial_corpus, public_corpus, IndustrialSpec, Scale};
use std::collections::HashMap;

#[test]
fn public_corpus_all_levels_verified() {
    for case in public_corpus(Scale::Tiny) {
        let mut areas: HashMap<OptLevel, usize> = HashMap::new();
        for level in OptLevel::ALL {
            let mut m = case.compile().expect("corpus compiles");
            let pipeline = Pipeline {
                verify: true,
                ..Default::default()
            };
            let report = pipeline
                .run(&mut m, level)
                .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", case.name));
            assert_eq!(
                report.equivalence,
                Some(EquivResult::Equivalent),
                "{} must stay equivalent at {level:?}",
                case.name
            );
            m.validate()
                .unwrap_or_else(|e| panic!("{} invalid after {level:?}: {e}", case.name));
            areas.insert(level, report.area_after);
        }
        // smaRTLy never loses to the baseline
        assert!(
            areas[&OptLevel::Full] <= areas[&OptLevel::Baseline],
            "{}: full {} vs baseline {}",
            case.name,
            areas[&OptLevel::Full],
            areas[&OptLevel::Baseline]
        );
        assert!(areas[&OptLevel::SatOnly] <= areas[&OptLevel::Baseline]);
        assert!(areas[&OptLevel::RebuildOnly] <= areas[&OptLevel::Baseline]);
    }
}

#[test]
fn industrial_gap_is_large() {
    // the paper's §IV-B shape: Yosys finds almost nothing on
    // selection-dominated designs, smaRTLy removes a large fraction
    let spec = IndustrialSpec {
        points: 3,
        scale: Scale::Small,
        ..Default::default()
    };
    let mut total_extra = 0.0;
    for case in industrial_corpus(&spec) {
        let mut base = case.compile().expect("compiles");
        let mut full = base.clone();
        let pipeline = Pipeline::default();
        let rb = pipeline
            .run(&mut base, OptLevel::Baseline)
            .expect("baseline");
        let rf = pipeline.run(&mut full, OptLevel::Full).expect("full");
        let extra = 1.0 - rf.area_after as f64 / rb.area_after as f64;
        total_extra += extra;
    }
    let avg = total_extra / 3.0;
    assert!(
        avg > 0.25,
        "industrial extra reduction should be large, got {:.1}%",
        100.0 * avg
    );
}

#[test]
fn pipeline_is_idempotent() {
    // running the full pipeline twice must not change the result again
    for case in public_corpus(Scale::Tiny).into_iter().take(3) {
        let mut m = case.compile().expect("compiles");
        let pipeline = Pipeline::default();
        let first = pipeline.run(&mut m, OptLevel::Full).expect("first run");
        let second = pipeline.run(&mut m, OptLevel::Full).expect("second run");
        assert_eq!(
            first.area_after, second.area_after,
            "{}: second run changed the area",
            case.name
        );
        assert_eq!(second.sat_rewrites, 0, "{}: no rewrites left", case.name);
        assert_eq!(second.rebuild_stats.rebuilt, 0);
    }
}

#[test]
fn chain_and_pmux_lowering_are_equivalent() {
    use smartly_aig::{check_equiv, EquivOptions};
    use smartly_verilog::{compile_with, CaseLowering, ElaborateOptions};
    for case in public_corpus(Scale::Tiny).into_iter().take(4) {
        let chain = compile_with(
            &case.source,
            &ElaborateOptions {
                case_lowering: CaseLowering::Chain,
            },
        )
        .expect("chain lowering")
        .into_top()
        .expect("module");
        let pmux = compile_with(
            &case.source,
            &ElaborateOptions {
                case_lowering: CaseLowering::Pmux,
            },
        )
        .expect("pmux lowering")
        .into_top()
        .expect("module");
        let r = check_equiv(&chain, &pmux, &EquivOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(
            r,
            EquivResult::Equivalent,
            "{}: the two case lowerings must agree",
            case.name
        );
    }
}
