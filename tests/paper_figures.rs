//! End-to-end reproduction of the paper's motivating figures, from
//! Verilog source through optimization to verified netlists.

use smartly_aig::EquivResult;
use smartly_core::{OptLevel, Pipeline};
use smartly_netlist::Module;
use smartly_workloads::paper_figures;

fn compile(name: &str) -> Module {
    paper_figures()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no figure case '{name}'"))
        .compile()
        .expect("figure sources are valid")
}

fn run(module: &mut Module, level: OptLevel) -> smartly_core::PipelineReport {
    let pipeline = Pipeline {
        verify: true,
        ..Default::default()
    };
    let report = pipeline.run(module, level).expect("pipeline runs");
    assert_eq!(
        report.equivalence,
        Some(EquivResult::Equivalent),
        "{level:?} must preserve the function"
    );
    report
}

/// Fig. 1: `S ? (S ? A : B) : C` — the identical-control nest collapses
/// already at the Yosys baseline.
#[test]
fn fig1_collapses_at_baseline() {
    let mut m = compile("fig1_same_ctrl");
    assert_eq!(m.stats().count("mux"), 2, "elaboration builds the nest");
    run(&mut m, OptLevel::Baseline);
    assert_eq!(m.stats().count("mux"), 1, "baseline removes the inner mux");
}

/// Fig. 3: `S ? ((S|R) ? A : B) : C` — the baseline is blind to the OR
/// dependency; the SAT pass eliminates the inner mux and the OR dies too.
#[test]
fn fig3_needs_smartly() {
    let mut baseline = compile("fig3_dependent_ctrl");
    let mut full = baseline.clone();

    run(&mut baseline, OptLevel::Baseline);
    assert_eq!(
        baseline.stats().count("mux"),
        2,
        "baseline cannot see through the OR gate"
    );

    let report = run(&mut full, OptLevel::Full);
    assert_eq!(full.stats().count("mux"), 1, "SAT pass collapses the nest");
    assert_eq!(full.stats().count("or"), 0, "the OR gate becomes dead");
    assert!(report.sat_rewrites >= 1);
}

/// Listing 1 / Figs. 5–7: the 4-way case chain keeps its three muxes but
/// drops all three eq comparators after restructuring.
#[test]
fn listing1_rebuild_frees_eq_cells() {
    let mut m = compile("listing1_case_chain");
    assert_eq!(m.stats().count("eq"), 3);
    assert_eq!(m.stats().count("mux"), 3);
    let report = run(&mut m, OptLevel::RebuildOnly);
    assert_eq!(report.rebuild_stats.rebuilt, 1);
    assert_eq!(m.stats().count("eq"), 0, "eq cells disconnected and swept");
    assert_eq!(m.stats().count("mux"), 3, "paper Fig. 7: three muxes");
}

/// Listing 2: the casez priority decode also rebuilds to three muxes
/// (the greedy ADD finds the good S2-first assignment).
#[test]
fn listing2_rebuilds_with_good_order() {
    let mut m = compile("listing2_casez");
    let report = run(&mut m, OptLevel::RebuildOnly);
    assert_eq!(report.rebuild_stats.rebuilt, 1);
    assert_eq!(
        report.rebuild_stats.muxes_added, 3,
        "good assignment: 3 muxes"
    );
    assert_eq!(m.stats().count("eq"), 0);
}

/// The full pipeline never loses to the baseline on any figure.
#[test]
fn full_never_worse_than_baseline() {
    for case in paper_figures() {
        let mut baseline = case.compile().expect("valid");
        let mut full = baseline.clone();
        let rb = run(&mut baseline, OptLevel::Baseline);
        let rf = run(&mut full, OptLevel::Full);
        assert!(
            rf.area_after <= rb.area_after,
            "{}: full {} vs baseline {}",
            case.name,
            rf.area_after,
            rb.area_after
        );
    }
}
