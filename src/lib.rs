//! smartly-suite: examples and integration tests for the smaRTLy reproduction.
