//! smartly-suite: the workspace façade for the smaRTLy reproduction.
//!
//! This crate hosts the `smartly` CLI binary plus the workspace-level
//! integration tests and examples. The implementation lives in the
//! member crates:
//!
//! | crate | role |
//! |-------|------|
//! | `smartly-netlist` | word-level netlist IR (RTLIL-style) |
//! | `smartly-sat` | CDCL SAT solver + Tseitin encoding |
//! | `smartly-add` | algebraic decision diagrams (rebuild substrate) |
//! | `smartly-aig` | AIG area metric and equivalence checking |
//! | `smartly-opt` | Yosys-style baseline passes |
//! | `smartly-sim` | bit-parallel / three-valued simulation |
//! | `smartly-verilog` | Verilog-2001 subset frontend + emitter |
//! | `smartly-core` | the paper's passes and per-module pipeline |
//! | `smartly-workloads` | seeded benchmark corpora |
//! | `smartly-driver` | design-level parallel engine + reports |
//! | `smartly-bench` | table-reproducing binaries |
//!
//! # The `smartly` CLI
//!
//! ```text
//! smartly opt design.v --verify --jobs 8 --json report.json -o out.v
//! smartly stats design.v
//! smartly corpus --scale tiny --json BENCH_driver.json
//! ```
//!
//! `smartly opt` parses a (multi-module) Verilog file, optimizes every
//! module in parallel through [`smartly_driver::optimize_design`],
//! optionally SAT-verifies each rewrite, and emits structural Verilog
//! back. Reports are deterministic: `--jobs 1` and `--jobs N` produce
//! byte-identical [`smartly_driver::DesignReport::digest`]s.
//!
//! # Library quickstart
//!
//! ```
//! use smartly_driver::{optimize_design, DriverOptions};
//!
//! let src = r#"
//! module m (input wire s, input wire r, input wire [7:0] a,
//!           input wire [7:0] b, input wire [7:0] c, output reg [7:0] y);
//!   always @(*) begin
//!     if (s) begin if (s | r) y = a; else y = b; end else y = c;
//!   end
//! endmodule
//! "#;
//! let mut design = smartly_verilog::compile(src)?;
//! let opts = DriverOptions { verify: true, ..Default::default() };
//! let report = optimize_design(&mut design, &opts)?;
//! assert_eq!(report.all_equivalent(), Some(true));
//! assert!(report.area_after() < report.area_before());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use smartly_core;
pub use smartly_driver;
pub use smartly_netlist;
pub use smartly_verilog;
pub use smartly_workloads;
