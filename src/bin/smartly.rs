//! `smartly` — the end-to-end RTL optimization CLI.
//!
//! ```text
//! smartly opt <file.v> [--level yosys|sat|rebuild|full] [--jobs N]
//!             [--verify] [--json report.json] [-o out.v]
//!             [--max-cells N] [--timeout-ms N] [--no-memo]
//!             [--trace trace.json] [--digest digest.json] [--quiet|-v]
//! smartly stats <file.v> [--solver] [--level L] [--knowledge-file F]
//! smartly corpus [--scale tiny|small|paper|medium|large] [--jobs N]
//!                [--cases N] [--verify] [--json BENCH_driver.json]
//!                [--digest digest.json] [--trace-dir DIR] [--quiet]
//!                [--curve curve.json [--curve-scales a,b,c]]
//! smartly trace <trace.json>
//! smartly serve [--socket F] [--journal F] [--queue N] [--workers N]
//!               [--jobs N] [--timeout-ms N] [--drain-grace-ms N]
//!               [--knowledge-file F] [--no-knowledge-save]
//! ```

use smartly_driver::{
    chrome_trace_json, level_from_str, optimize_design, optimize_source, run_public_corpus,
    run_scaling_curve, scale_from_str, CorpusOptions, CurveOptions, DriverOptions, KnowledgeState,
    StoreKey, TraceSummary, Verbosity,
};
use smartly_netlist::CellStats;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// `println!` that ignores a closed stdout (e.g. `smartly stats | head`)
/// instead of panicking on the broken pipe. The command keeps running so
/// `--json`/`-o` artifacts are still written and the exit code still
/// reflects verification, even when the reader hung up early.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// `print!` variant of [`outln!`].
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}

const USAGE: &str = "smartly — SAT-based RTL optimization (smaRTLy reproduction)

USAGE:
  smartly opt <file.v> [OPTIONS]     parse, optimize all modules in
                                     parallel, and emit Verilog
  smartly stats <file.v> [--solver]  per-module cell statistics; with
                                     --solver (optionally --level L) also
                                     optimize a scratch copy and print
                                     the per-design CDCL solver summary
                                     (conflicts, learnt tiers, reduces,
                                     arena GCs, rephase histogram)
  smartly corpus [OPTIONS]           run the public workload suite and
                                     print a Table-III-style summary
  smartly trace <trace.json>         validate an exported span trace and
                                     print top self-time spans, per-track
                                     breakdown, and query-funnel
                                     attribution
  smartly serve [OPTIONS]            long-lived optimization daemon: a
                                     Unix socket speaking one JSON object
                                     per line (submit/status/result/
                                     health/drain), a crash-recoverable
                                     job journal, bounded admission, and
                                     graceful drain on SIGTERM

OPT OPTIONS:
  --level <yosys|sat|rebuild|full>   optimization level (default: full)
  --jobs <N>                         worker threads (default: all CPUs)
  --verify                           SAT-check each module against its
                                     original
  --json <path>                      write the machine-readable report
  -o, --output <path>                write optimized Verilog (default:
                                     stdout summary only)
  --max-cells <N>                    skip modules larger than N cells
  --timeout-ms <N>                   per-module budget: a cooperative
                                     deadline interrupts SAT search and
                                     the module reverts to its original
                                     netlist (reported as timed_out)
  --no-memo                          disable the structural memo cache
  --no-knowledge                     disable the design-level shared
                                     counterexample bank (ablation;
                                     verdicts and areas are identical)
  --knowledge-file <path>            load/save the persistent knowledge
                                     store (smartly.kb): repeated runs
                                     over evolving RTL start warm. A
                                     missing, stale, or corrupt file
                                     falls back to a cold start, never
                                     an error
  --no-knowledge-save                read the knowledge file but do not
                                     write it back
  --trace <path>                     record hierarchical spans (module,
                                     round, pass, query, SAT call) and
                                     write a Chrome trace-event JSON
                                     loadable in Perfetto. Observation
                                     only: the digest is byte-identical
                                     with or without it
  --digest <path>                    write the timing-free report digest
                                     (byte-identical across runs, --jobs
                                     settings, tracing on/off, and
                                     knowledge warm/cold state)
  --quiet, -q                        suppress per-module lines
  -v, --verbose                      add funnel/solver/knowledge counter
                                     lines to the summary

CORPUS OPTIONS:
  --scale <tiny|small|paper|medium|large>  corpus size (default: tiny);
                                     medium/large are the conflict-
                                     bearing scales
  --cases <N>                        run only the first N circuits (CI
                                     bound; stamped into the artifact)
  --curve <path>                     run the scaling-curve sweep instead:
                                     Full-level wall time + funnel
                                     attribution per (scale, jobs) point
                                     across a doubling jobs ladder, as a
                                     timing-only JSON artifact
  --curve-scales <a,b,c>             scales swept by --curve (default:
                                     tiny,small,paper,medium)
  --digest <path>                    write the timing-free artifact
                                     (byte-identical across runs,
                                     --jobs settings, and knowledge-file
                                     warm/cold state; CI diffs it)
  --trace-dir <dir>                  record spans and write one Chrome
                                     trace file per level run and bench
                                     into <dir>
  --quiet, -q                        suppress the per-circuit table
  --luby-restarts                    solver ablation: fixed Luby restart
                                     schedule instead of the adaptive
                                     EMA controller (digest unchanged)
  --no-inprocessing                  solver ablation: skip vivification/
                                     subsumption at restart boundaries
                                     (digest unchanged)
  --no-knowledge, --knowledge-file <path>, --no-knowledge-save  as above
  --jobs <N>, --verify, --json <path> as above

STATS OPTIONS:
  --solver                           also optimize a scratch copy and
                                     print the solver/funnel summary
  --level <yosys|sat|rebuild|full>   level for the scratch run
  --knowledge-file <path>            attach the persistent knowledge
                                     store to the scratch run and report
                                     its load/hit/save counters
  --no-knowledge-save                read-only knowledge attach

SERVE OPTIONS:
  --socket <path>                    Unix socket to listen on (default:
                                     smartly.sock)
  --journal <path>                   append-only job journal: accepted
                                     jobs are fsync'd before the client
                                     sees ok, so a SIGKILL loses no
                                     accepted work — restart replays the
                                     journal (completed jobs stay
                                     queryable, unfinished jobs re-run to
                                     the same digest). Omit to disable
                                     crash recovery
  --queue <N>                        bounded queue depth; beyond it
                                     submits get {\"rejected\":
                                     \"overloaded\"} (default: 64)
  --workers <N>                      concurrent jobs (default: 1; each
                                     job is internally parallel)
  --jobs <N>                         driver threads per job (default:
                                     all CPUs)
  --timeout-ms <N>                   default per-job budget applied when
                                     a submit carries none; the watchdog
                                     poisons jobs wedged past budget +
                                     grace instead of wedging a worker
  --drain-grace-ms <N>               how long drain waits for running
                                     jobs, twice: once to finish, once
                                     after tripping their deadlines
                                     (default: 2000)
  --knowledge-file <path>            resident persistent knowledge store
                                     shared by every job; written back
                                     crash-safely at drain
  --no-knowledge-save                read-only knowledge attach

FAULT INJECTION:
  SMARTLY_FAILPOINTS=\"site=action[@filter];...\"  arm deterministic
                                     fail points for chaos testing, e.g.
                                     persist.save.io=hit:1 or
                                     driver.module.panic=always@adder.
                                     Actions: always, hit:N, after:N,
                                     every:N, p:A/B:SEED. Server sites:
                                     server.accept, server.journal.*.
                                     Unset = zero overhead. See README
                                     \"Fault model\".
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("opt") => cmd_opt(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            out!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("smartly: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag <value>` out of `args`, removing both.
fn take_value(args: &mut Vec<String>, names: &[&str]) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| names.contains(&a.as_str())) {
        if pos + 1 >= args.len() {
            return Err(format!("{} needs a value", args[pos]));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Removes `--flag` from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Pulls `--quiet`/`-q` and `-v`/`--verbose` out of `args`. When both
/// appear the louder one wins, matching what a user piling on flags
/// most plausibly wants.
fn take_verbosity(args: &mut Vec<String>) -> Verbosity {
    let quiet = take_flag(args, "--quiet") | take_flag(args, "-q");
    let verbose = take_flag(args, "-v") | take_flag(args, "--verbose");
    if verbose {
        Verbosity::Verbose
    } else if quiet {
        Verbosity::Quiet
    } else {
        Verbosity::Normal
    }
}

fn parse_number(value: &str, flag: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got '{value}'"))
}

fn positional(args: Vec<String>, what: &str) -> Result<String, String> {
    let mut it = args.into_iter();
    let first = it.next().ok_or_else(|| format!("missing {what}"))?;
    if first.starts_with('-') {
        return Err(format!("unexpected option '{first}'"));
    }
    if let Some(extra) = it.next() {
        return Err(format!("unexpected argument '{extra}'"));
    }
    Ok(first)
}

/// Loads the persistent knowledge store at `path`, printing a cold-start
/// warning when an existing file had to be rejected (stale header or
/// damage) — the run itself always proceeds.
fn load_knowledge(path: &str, budget: u64, bank_capacity: usize) -> Arc<KnowledgeState> {
    let key = StoreKey::current(budget);
    let state = smartly_driver::load_state(std::path::Path::new(path), &key, bank_capacity);
    if state.load.stale_rejected || state.load.load_failed {
        eprintln!(
            "smartly: warning: knowledge file {path} rejected ({}); starting cold",
            state.load.detail
        );
    }
    Arc::new(state)
}

/// What writing the knowledge store back accomplished: a failed save
/// degrades to a warning (`failed = true`) instead of failing the run —
/// the optimization results are already in hand and losing warm-start
/// state for the *next* run must not discard them.
struct KnowledgeSave {
    written: usize,
    retries: u64,
    failed: bool,
}

impl KnowledgeSave {
    /// Folds this save's outcome into the run report's kb counters.
    fn record(&self, kb: Option<&mut smartly_driver::KbReport>) {
        if let Some(kb) = kb {
            kb.entries_written = self.written;
            kb.save_retries = self.retries;
            kb.save_failed = self.failed;
        }
    }
}

/// Writes the (bounded) knowledge store back to `path`. Never errors:
/// persistence is an accelerator, so a save failure is reported on
/// stderr and in the kb counters while the run still exits 0.
fn save_knowledge(
    path: &str,
    state: &KnowledgeState,
    budget: u64,
    max_entries: usize,
) -> KnowledgeSave {
    let key = StoreKey::current(budget);
    match smartly_driver::save_state(std::path::Path::new(path), state, &key, max_entries) {
        Ok(report) => KnowledgeSave {
            written: report.entries_written(),
            retries: report.retries,
            failed: false,
        },
        Err(e) => {
            eprintln!(
                "smartly: warning: cannot write knowledge file {path}: {e}; \
                 this run's results are unaffected, the next run starts cold"
            );
            KnowledgeSave {
                written: 0,
                // a total failure exhausted every attempt
                retries: u64::from(smartly_driver::persist::SAVE_ATTEMPTS) - 1,
                failed: true,
            }
        }
    }
}

fn compile_file(path: &str) -> Result<smartly_netlist::Design, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    smartly_verilog::compile(&source).map_err(|e| format!("{path}: {e}"))
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let mut opts = DriverOptions::default();
    if let Some(level) = take_value(&mut args, &["--level"])? {
        opts.level = level_from_str(&level)
            .ok_or_else(|| format!("unknown level '{level}' (yosys|sat|rebuild|full)"))?;
    }
    if let Some(jobs) = take_value(&mut args, &["--jobs", "-j"])? {
        opts.jobs = parse_number(&jobs, "--jobs")? as usize;
    }
    opts.verify = take_flag(&mut args, "--verify");
    opts.memoize = !take_flag(&mut args, "--no-memo");
    opts.share_knowledge = !take_flag(&mut args, "--no-knowledge");
    if let Some(n) = take_value(&mut args, &["--max-cells"])? {
        opts.max_cells = Some(parse_number(&n, "--max-cells")? as usize);
    }
    if let Some(ms) = take_value(&mut args, &["--timeout-ms"])? {
        opts.timeout = Some(Duration::from_millis(parse_number(&ms, "--timeout-ms")?));
    }
    let knowledge_file = take_value(&mut args, &["--knowledge-file"])?;
    let knowledge_save = !take_flag(&mut args, "--no-knowledge-save");
    let json_path = take_value(&mut args, &["--json"])?;
    let trace_path = take_value(&mut args, &["--trace"])?;
    opts.trace = trace_path.is_some();
    let digest_path = take_value(&mut args, &["--digest"])?;
    let verbosity = take_verbosity(&mut args);
    let out_path = take_value(&mut args, &["--output", "-o"])?;
    let input = positional(args, "input file")?;

    let budget = opts.pipeline.sat.conflict_budget;
    let store_bound = opts.pipeline.sat.cex_bank_capacity;
    if let Some(path) = &knowledge_file {
        if opts.share_knowledge {
            opts.knowledge_state = Some(load_knowledge(path, budget, opts.knowledge_capacity));
        } else {
            eprintln!("smartly: warning: --knowledge-file is ignored with --no-knowledge");
        }
    }

    // The same job seam `smartly serve` runs submissions through:
    // compile → optimize → emit → digest in one call, so the daemon and
    // the one-shot CLI cannot produce different artifacts for the same
    // input (the digest-parity gate both CI smoke steps `cmp`).
    let source =
        std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let job = optimize_source(&source, &opts).map_err(|e| format!("{input}: {e}"))?;
    let mut report = job.report;

    if let (Some(path), Some(state)) = (&knowledge_file, &opts.knowledge_state) {
        if knowledge_save {
            let save = save_knowledge(path, state, budget, store_bound);
            save.record(report.kb.as_mut());
            if !save.failed {
                outln!(
                    "knowledge store written to {path} ({} entries)",
                    save.written
                );
            }
        }
    }

    outln!("{}", report.render_human(verbosity));
    // Write the report before the verification verdict: on failure the
    // JSON is the artifact that says which module/output/bit differed.
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json().render_pretty(2))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("report written to {path}");
    }
    if let Some(path) = trace_path {
        let trace = report
            .trace
            .as_ref()
            .ok_or("internal error: tracing enabled but no trace collected")?;
        std::fs::write(&path, chrome_trace_json(trace).render_pretty(1))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!(
            "trace written to {path} ({} events; inspect with `smartly trace {path}`)",
            trace.event_count()
        );
    }
    if let Some(path) = digest_path {
        std::fs::write(&path, &job.digest).map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("digest written to {path}");
    }
    if opts.verify && report.all_equivalent() == Some(false) {
        return Err("verification FAILED for at least one module".to_string());
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &job.verilog).map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("optimized Verilog written to {path}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let solver = take_flag(&mut args, "--solver");
    let level = take_value(&mut args, &["--level"])?;
    let knowledge_file = take_value(&mut args, &["--knowledge-file"])?;
    let knowledge_save = !take_flag(&mut args, "--no-knowledge-save");
    let input = positional(args, "input file")?;
    let design = compile_file(&input)?;
    for (i, is_top, module) in design.iter_with_top() {
        let marker = if is_top { " (top)" } else { "" };
        outln!("module {}{marker}:", module.name);
        out!("{}", CellStats::of(module));
        if i + 1 < design.len() {
            outln!();
        }
    }
    if solver || level.is_some() || knowledge_file.is_some() {
        // run the pipeline on a scratch copy and surface the per-design
        // solver/funnel summary, so ablations over one design do not
        // need the corpus runner
        let mut opts = DriverOptions::default();
        if let Some(level) = level {
            opts.level = level_from_str(&level)
                .ok_or_else(|| format!("unknown level '{level}' (yosys|sat|rebuild|full)"))?;
        }
        let budget = opts.pipeline.sat.conflict_budget;
        let store_bound = opts.pipeline.sat.cex_bank_capacity;
        if let Some(path) = &knowledge_file {
            opts.knowledge_state = Some(load_knowledge(path, budget, opts.knowledge_capacity));
        }
        let mut scratch = design;
        let mut report = optimize_design(&mut scratch, &opts).map_err(|e| e.to_string())?;
        if let (Some(path), Some(state)) = (&knowledge_file, &opts.knowledge_state) {
            if knowledge_save {
                let save = save_knowledge(path, state, budget, store_bound);
                save.record(report.kb.as_mut());
            }
        }
        let mut sat = smartly_core::sat_pass::SatPassStats::default();
        for m in &report.modules {
            if let Some(r) = &m.report {
                sat.absorb(&r.sat_stats);
            }
        }
        outln!();
        outln!(
            "solver ({} level): {} queries ({} to SAT), {}",
            opts.level.name(),
            sat.queries,
            sat.by_sat,
            sat.solver_summary(),
        );
        // fault-tolerance counters: how many modules were isolated after
        // a panic, how often the cooperative deadline was polled
        outln!(
            "faults: modules_poisoned={} deadline_checks={}",
            report.poisoned(),
            sat.solver_deadline_checks,
        );
        // persistence counters, surfaced in human output: did the store
        // load, did the disk layer answer anything, was it saved (and at
        // what retry cost).
        if let Some(kb) = &report.kb {
            let disk_hits = report
                .knowledge
                .as_ref()
                .map_or(kb.disk_hits, |k| k.disk_hits);
            outln!(
                "knowledge store: loaded {} shapes + {} verdicts, disk_hits={}, \
                 entries_written={}, stale_rejected={}, load_failed={}, \
                 save_failed={}, save_retries={}",
                kb.loaded_shapes,
                kb.loaded_verdicts,
                disk_hits,
                kb.entries_written,
                kb.stale_rejected,
                kb.load_failed,
                kb.save_failed,
                kb.save_retries,
            );
        }
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let mut opts = CorpusOptions::default();
    if let Some(scale) = take_value(&mut args, &["--scale"])? {
        opts.scale = scale_from_str(&scale)
            .ok_or_else(|| format!("unknown scale '{scale}' (tiny|small|paper|medium|large)"))?;
    }
    if let Some(jobs) = take_value(&mut args, &["--jobs", "-j"])? {
        opts.jobs = parse_number(&jobs, "--jobs")? as usize;
    }
    if let Some(cases) = take_value(&mut args, &["--cases"])? {
        opts.cases = Some(parse_number(&cases, "--cases")? as usize);
    }
    let curve_path = take_value(&mut args, &["--curve"])?;
    let curve_scales = take_value(&mut args, &["--curve-scales"])?;
    opts.verify = take_flag(&mut args, "--verify");
    opts.share_knowledge = !take_flag(&mut args, "--no-knowledge");
    opts.luby_restarts = take_flag(&mut args, "--luby-restarts");
    opts.inprocessing = !take_flag(&mut args, "--no-inprocessing");
    let knowledge_file = take_value(&mut args, &["--knowledge-file"])?;
    let knowledge_save = !take_flag(&mut args, "--no-knowledge-save");
    let json_path = take_value(&mut args, &["--json"])?;
    let digest_path = take_value(&mut args, &["--digest"])?;
    let trace_dir = take_value(&mut args, &["--trace-dir"])?;
    opts.trace = trace_dir.is_some();
    let verbosity = take_verbosity(&mut args);
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument '{extra}'"));
    }

    // --curve switches to the scaling-curve sweep: wall time + funnel
    // attribution vs. design size at jobs 1→N. Timing-only by design,
    // so it cannot be combined with the digest gate.
    if let Some(path) = curve_path {
        if digest_path.is_some() {
            return Err("--curve is a timing-only artifact; drop --digest".into());
        }
        let mut curve_opts = CurveOptions {
            max_jobs: opts.jobs,
            cases: opts.cases,
            ..Default::default()
        };
        if let Some(list) = curve_scales {
            curve_opts.scales = list
                .split(',')
                .map(|s| {
                    scale_from_str(s.trim()).ok_or_else(|| {
                        format!("unknown scale '{s}' (tiny|small|paper|medium|large)")
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        let report = run_scaling_curve(&curve_opts).map_err(|e| e.to_string())?;
        outln!("{report}");
        std::fs::write(&path, report.to_json().render_pretty(2))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("curve artifact written to {path}");
        return Ok(());
    } else if curve_scales.is_some() {
        return Err("--curve-scales requires --curve <path>".into());
    }

    let driver_defaults = DriverOptions::default();
    let budget = driver_defaults.pipeline.sat.conflict_budget;
    let store_bound = driver_defaults.pipeline.sat.cex_bank_capacity;
    if let Some(path) = &knowledge_file {
        if opts.share_knowledge {
            opts.knowledge_state = Some(load_knowledge(
                path,
                budget,
                driver_defaults.knowledge_capacity,
            ));
        } else {
            eprintln!("smartly: warning: --knowledge-file is ignored with --no-knowledge");
        }
    }

    let mut report = run_public_corpus(&opts).map_err(|e| e.to_string())?;
    if let (Some(path), Some(state)) = (&knowledge_file, &opts.knowledge_state) {
        if knowledge_save {
            let save = save_knowledge(path, state, budget, store_bound);
            save.record(report.kb.as_mut());
            if !save.failed {
                outln!(
                    "knowledge store written to {path} ({} entries)",
                    save.written
                );
            }
        }
    }
    outln!("{}", report.render_human(verbosity));
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json().render_pretty(2))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("artifact written to {path}");
    }
    if let Some(path) = digest_path {
        std::fs::write(&path, report.digest_json().render_pretty(2))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        outln!("digest written to {path}");
    }
    if let Some(dir) = trace_dir {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for trace in &report.traces {
            let path = dir.join(format!("{}.json", trace.name));
            std::fs::write(&path, chrome_trace_json(trace).render_pretty(1))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        outln!(
            "{} trace files written to {}",
            report.traces.len(),
            dir.display()
        );
    }
    Ok(())
}

/// The daemon's execution seam: every submitted job runs through the
/// same [`optimize_source`] call as `smartly opt`, against one resident
/// [`KnowledgeState`] shared across jobs (warm starts for similar
/// designs; digest-safe by the PR 4 invariant that knowledge state
/// never perturbs digests).
struct DriverRunner {
    /// Driver threads per job (`DriverOptions::jobs`).
    jobs: usize,
    /// The resident knowledge state, saved crash-safely at drain.
    knowledge: Arc<KnowledgeState>,
}

impl smartly_server::JobRunner for DriverRunner {
    fn run(
        &self,
        spec: &smartly_server::JobSpec,
        deadline: &smartly_core::Deadline,
    ) -> smartly_server::RunOutcome {
        let Some(level) = level_from_str(&spec.level) else {
            return smartly_server::RunOutcome::Failed {
                error: format!("unknown level '{}' (yosys|sat|rebuild|full)", spec.level),
            };
        };
        let opts = DriverOptions {
            level,
            jobs: self.jobs,
            verify: spec.verify,
            knowledge_state: Some(Arc::clone(&self.knowledge)),
            // the server owns the job's budget (spec.timeout_ms is
            // already folded into this token) and trips it on drain
            external_deadline: Some(deadline.clone()),
            ..DriverOptions::default()
        };
        match optimize_source(&spec.source, &opts) {
            Ok(job) => smartly_server::RunOutcome::Done {
                modules_poisoned: job.report.poisoned() as u64,
                digest: job.digest,
                verilog: job.verilog,
            },
            Err(e) => smartly_server::RunOutcome::Failed {
                error: e.to_string(),
            },
        }
    }

    fn health(&self) -> Vec<(String, u64)> {
        let bank = self.knowledge.bank.stats();
        let verdicts = self.knowledge.verdicts.stats();
        [
            ("kb_shapes", bank.shapes as u64),
            ("kb_published", bank.published),
            ("kb_hits", bank.hits),
            ("kb_disk_hits", bank.disk_hits),
            ("kb_misses", bank.misses),
            ("kb_evictions", bank.evictions),
            ("verdict_disk_entries", verdicts.disk_entries as u64),
            ("verdict_disk_hits", verdicts.disk_hits),
            ("verdict_published", verdicts.published),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let socket =
        take_value(&mut args, &["--socket"])?.unwrap_or_else(|| "smartly.sock".to_string());
    let mut config = smartly_server::ServerConfig::new(&socket);
    config.handle_signals = true;
    config.journal = take_value(&mut args, &["--journal"])?.map(std::path::PathBuf::from);
    if let Some(n) = take_value(&mut args, &["--queue"])? {
        config.queue_capacity = (parse_number(&n, "--queue")? as usize).max(1);
    }
    if let Some(n) = take_value(&mut args, &["--workers"])? {
        config.workers = (parse_number(&n, "--workers")? as usize).max(1);
    }
    if let Some(ms) = take_value(&mut args, &["--timeout-ms"])? {
        config.default_timeout_ms = parse_number(&ms, "--timeout-ms")?;
    }
    if let Some(ms) = take_value(&mut args, &["--drain-grace-ms"])? {
        config.drain_grace = Duration::from_millis(parse_number(&ms, "--drain-grace-ms")?);
    }
    let jobs = match take_value(&mut args, &["--jobs", "-j"])? {
        Some(n) => parse_number(&n, "--jobs")? as usize,
        None => 0,
    };
    let knowledge_file = take_value(&mut args, &["--knowledge-file"])?;
    let knowledge_save = !take_flag(&mut args, "--no-knowledge-save");
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument '{extra}'"));
    }

    let defaults = DriverOptions::default();
    let budget = defaults.pipeline.sat.conflict_budget;
    let store_bound = defaults.pipeline.sat.cex_bank_capacity;
    let knowledge = match &knowledge_file {
        Some(path) => load_knowledge(path, budget, defaults.knowledge_capacity),
        None => Arc::new(KnowledgeState::cold(defaults.knowledge_capacity)),
    };

    let runner = Arc::new(DriverRunner {
        jobs,
        knowledge: Arc::clone(&knowledge),
    });
    let server = smartly_server::Server::bind(config, runner).map_err(|e| e.to_string())?;
    if !server.replayed_jobs().is_empty() {
        outln!(
            "smartly serve: journal replay re-queued {} unfinished job(s)",
            server.replayed_jobs().len()
        );
    }
    outln!("smartly serve: listening on {socket}");

    // run() returns only after the drain ladder: admissions stopped,
    // running jobs finished / deadline-tripped / force-poisoned
    let report = server.run();
    outln!(
        "smartly serve: drained — {} done, {} failed, {} poisoned, {} queued for next start{}",
        report.completed,
        report.failed,
        report.poisoned,
        report.queued_for_restart,
        if report.clean { "" } else { " (forced)" },
    );

    // final crash-safe knowledge save, after the last job finished
    if let (Some(path), true) = (&knowledge_file, knowledge_save) {
        let save = save_knowledge(path, &knowledge, budget, store_bound);
        if !save.failed {
            outln!(
                "knowledge store written to {path} ({} entries)",
                save.written
            );
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let input = positional(args.to_vec(), "trace file")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let summary = TraceSummary::from_text(&text).map_err(|e| format!("{input}: {e}"))?;
    out!("{summary}");
    Ok(())
}
